"""Adversaries that understand the compact protocol's wire format.

The generic strategies in :mod:`repro.adversary.byzantine` attack any
protocol; these attack Protocol 3 *specifically*, aiming at the
mechanisms its proofs defend:

* :class:`StaleCoreAdversary` — replays earlier rounds' CORE arrays as
  the main component (wrong depth for the phase: must be detected by
  shape validation and substituted);
* :class:`ForgedIndexAdversary` — sends *well-shaped, expandable, but
  fabricated* index arrays (e.g. claiming every component came from
  processor 1).  These pass every local check — which is fine: they
  correspond to messages a faulty processor may legally send in the
  simulated execution, and agreement must hold regardless;
* :class:`SpliceAdversary` — splices the main component of one correct
  processor's payload with the avalanche votes of another, to push
  inconsistency between the main protocol and its subprotocols;
* :class:`AvalancheEquivocator` — participates normally in the main
  component but equivocates *inside* the avalanche components, voting
  differently to different receivers in every instance — a direct
  attack on the agreement that expansion functions are built from.

All are used by the failure-injection test suite and experiment E5's
fidelity harness: under every one of them the compact protocol must
keep agreement, validity, the step-5 invariant, and OUT consistency.
"""

from __future__ import annotations

from typing import Any, Dict, List

from repro.adversary.base import Adversary, RoundContext
from repro.types import BOTTOM, ProcessId, Round


def _payload_cls():
    # Imported lazily: repro.runtime.network needs repro.adversary at
    # import time, and repro.compact needs repro.runtime — importing
    # repro.compact here at module level would close that cycle.
    from repro.compact.payload import CompactPayload

    return CompactPayload


def _correct_payload(context: RoundContext, sender: ProcessId,
                     receiver: ProcessId) -> Any:
    message = context.correct_message(sender, receiver)
    return message if isinstance(message, _payload_cls()) else None


def _some_correct(context: RoundContext) -> List[ProcessId]:
    return sorted(context.correct_senders())


class StaleCoreAdversary(Adversary):
    """Replays the previous round's main component.

    A stale CORE has the wrong depth for the current phase, so correct
    receivers must reject and substitute it.  The first round (nothing
    stale yet) falls back to a legal-looking value.
    """

    def __init__(self, faulty_ids):
        super().__init__(faulty_ids)
        self._previous: Dict[ProcessId, Any] = {}

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        correct = _some_correct(context)
        if not correct:
            return {}
        current = _correct_payload(context, correct[0], sender)
        stale_main = self._previous.get(sender, BOTTOM)
        if current is not None:
            self._previous[sender] = current.main
        payload = _payload_cls()(
            main=stale_main,
            votes=current.votes if current is not None else (),
        )
        return {receiver: payload for receiver in self.config.process_ids}


class ForgedIndexAdversary(Adversary):
    """Sends well-shaped index arrays crediting everything to node 1.

    From block 2 on, a main component of the right depth whose leaves
    are all ``1`` is usually *expandable* (OUT[b][1] exists), so the
    receiver incorporates a coherent lie.  Agreement must survive — in
    the simulated execution this is simply a faulty processor sending
    a particular legal value array.
    """

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        correct = _some_correct(context)
        if not correct:
            return {}
        template = _correct_payload(context, correct[0], sender)
        if template is None or template.main is BOTTOM:
            return {
                receiver: _payload_cls()(
                    main=BOTTOM,
                    votes=template.votes if template else (),
                )
                for receiver in self.config.process_ids
            }
        forged_main = self._forge_like(template.main)
        payload = _payload_cls()(main=forged_main, votes=template.votes)
        return {receiver: payload for receiver in self.config.process_ids}

    def _forge_like(self, array: Any) -> Any:
        if isinstance(array, tuple):
            return tuple(self._forge_like(component) for component in array)
        if isinstance(array, int) and not isinstance(array, bool):
            if 1 <= array <= self.config.n:
                return 1  # credit everything to processor 1
        return array  # block-1 values left as-is (still well-formed)


class SpliceAdversary(Adversary):
    """Main component from one correct node, votes from another."""

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        correct = _some_correct(context)
        if len(correct) < 2:
            return {}
        messages: Dict[ProcessId, Any] = {}
        for receiver in self.config.process_ids:
            first = _correct_payload(context, correct[0], receiver)
            second = _correct_payload(context, correct[-1], receiver)
            if first is None or second is None:
                continue
            messages[receiver] = _payload_cls()(
                main=first.main, votes=second.votes
            )
        return messages


class AvalancheEquivocator(Adversary):
    """Honest-looking main component, equivocating avalanche votes.

    For each receiver, every vote slot of every batch is replaced by a
    receiver-dependent value copied from a different correct
    processor's payload — the maximal legal-looking inconsistency the
    avalanche layer can be fed.
    """

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        correct = _some_correct(context)
        if not correct:
            return {}
        messages: Dict[ProcessId, Any] = {}
        for index, receiver in enumerate(self.config.process_ids):
            # Rotate which correct processor's votes this receiver sees.
            donor = correct[index % len(correct)]
            base = _correct_payload(context, correct[0], receiver)
            donor_payload = _correct_payload(context, donor, receiver)
            if base is None or donor_payload is None:
                continue
            messages[receiver] = _payload_cls()(
                main=base.main, votes=donor_payload.votes
            )
        return messages
