"""Fail-stop (crash) faults.

A crashed processor follows its protocol faithfully until its crash
round, during which it may reach only a prefix of the recipients of
its final broadcast (the classic "crash mid-send" semantics), and is
silent forever after.

To "follow the protocol faithfully" the adversary runs a **ghost**
instance of the real protocol for each faulty processor: it is built
with the same factory as the correct processors, fed exactly the
messages a real processor in its position would receive, and its
``outgoing`` is what gets (partially) delivered.  This is the benign
fault model in which the paper's transformation incurs no round
overhead (Section 1), exercised by experiment E8.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Mapping, Optional

from repro.adversary.base import Adversary, RoundContext
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value

# Builds a ghost process: (process_id, config, input_value) -> Process.
GhostFactory = Callable[[ProcessId, SystemConfig, Value], Any]


class CrashAdversary(Adversary):
    """Runs real protocol logic for faulty ids, crashing them on cue.

    Parameters
    ----------
    crash_rounds:
        Map from faulty processor id to the round in which it crashes.
        In that round the processor's messages reach only recipients
        with ids up to a cut point; afterwards it is silent.
    factory:
        The same process factory handed to the engine, used to build
        ghost instances.
    cut_fraction:
        Fraction (0..1) of recipients, in id order, reached during the
        crash round.  0 means a clean crash before sending; 1 means the
        crash lands after a complete broadcast.
    """

    def __init__(
        self,
        crash_rounds: Mapping[ProcessId, Round],
        factory: GhostFactory,
        cut_fraction: float = 0.5,
    ):
        super().__init__(crash_rounds.keys())
        if not 0.0 <= cut_fraction <= 1.0:
            raise ValueError(f"cut_fraction must be in [0, 1], got {cut_fraction}")
        self.crash_rounds = dict(crash_rounds)
        self._factory = factory
        self._cut_fraction = cut_fraction
        self._ghosts: Optional[Dict[ProcessId, Any]] = None
        self._ghost_outgoing: Dict[ProcessId, Dict[ProcessId, Any]] = {}

    # -- ghost management --------------------------------------------------

    def _ensure_ghosts(self, context: RoundContext) -> Dict[ProcessId, Any]:
        if self._ghosts is None:
            self._ghosts = {
                process_id: self._factory(
                    process_id, self.config, context.inputs[process_id]
                )
                for process_id in sorted(self.faulty_ids)
            }
        return self._ghosts

    def ghost(self, process_id: ProcessId) -> Any:
        """The ghost process object (for tests), or ``None`` pre-start."""
        if self._ghosts is None:
            return None
        return self._ghosts.get(process_id)

    # -- adversary interface -----------------------------------------------

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        ghosts = self._ensure_ghosts(context)
        crash_round = self.crash_rounds[sender]
        if round_number > crash_round:
            self._ghost_outgoing[sender] = {}
            return {}
        full = dict(ghosts[sender].outgoing(round_number))
        self._ghost_outgoing[sender] = full
        if round_number < crash_round:
            return full
        # Crash round: deliver to an id-ordered prefix of recipients.
        recipients = sorted(full)
        cut = int(round(len(recipients) * self._cut_fraction))
        return {receiver: full[receiver] for receiver in recipients[:cut]}

    def observe_round(
        self,
        round_number: Round,
        context: RoundContext,
        faulty_outgoing: Mapping[ProcessId, Mapping[ProcessId, Any]],
    ) -> None:
        """Feed each still-running ghost its incoming messages.

        A ghost's view combines correct traffic (from the context) and
        the *intended* messages of fellow faulty processors (a crashed
        peer that cut its broadcast reaches ghosts per the same cut).
        """
        if self._ghosts is None:
            return
        for process_id, ghost in self._ghosts.items():
            if round_number > self.crash_rounds[process_id]:
                continue  # crashed ghosts no longer take steps
            incoming: Dict[ProcessId, Any] = {}
            for sender in self.config.process_ids:
                if sender in self.faulty_ids:
                    incoming[sender] = faulty_outgoing.get(sender, {}).get(
                        process_id, BOTTOM
                    )
                else:
                    incoming[sender] = context.correct_message(sender, process_id)
            ghost.receive(round_number, incoming)
