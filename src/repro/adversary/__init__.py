"""Fault models and adversary strategies.

The paper's protocols are proved against a *Byzantine* adversary:
failed processors send arbitrary messages, chosen with full knowledge
of the system (the network hands each strategy a view of the round's
correct traffic before the faulty messages are fixed — a rushing
adversary).  More benign models (fail-stop, omission) are included
because the paper's transformation specialises to them with no round
overhead (Section 1).

Strategies are deterministic given their seeded RNG, so any execution
is replayable from ``(protocol, inputs, adversary, seed)``.
"""

from repro.adversary.base import Adversary, PassiveAdversary, RoundContext
from repro.adversary.byzantine import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    RandomGarbageAdversary,
    SilentAdversary,
    StrategyTable,
    VoteSplitterAdversary,
)
from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.adversary.compact_attacks import (
    AvalancheEquivocator,
    ForgedIndexAdversary,
    SpliceAdversary,
    StaleCoreAdversary,
)

__all__ = [
    "Adversary",
    "PassiveAdversary",
    "RoundContext",
    "CollusionAdversary",
    "EquivocatingAdversary",
    "MalformedArrayAdversary",
    "RandomGarbageAdversary",
    "SilentAdversary",
    "StrategyTable",
    "VoteSplitterAdversary",
    "CrashAdversary",
    "OmissionAdversary",
    "AvalancheEquivocator",
    "ForgedIndexAdversary",
    "SpliceAdversary",
    "StaleCoreAdversary",
]
