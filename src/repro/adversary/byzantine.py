"""Byzantine adversary strategies.

Each strategy chooses arbitrary messages for the faulty processors,
with full knowledge of this round's correct traffic (rushing).  The
strategies here cover the attack surfaces the paper's proofs defend
against:

* :class:`SilentAdversary` — sends nothing (detectable omissions);
* :class:`RandomGarbageAdversary` — random plausible values, fresh per
  recipient (equivocation without intent);
* :class:`EquivocatingAdversary` — deliberate two-faced behaviour:
  value ``a`` to one half of the recipients, value ``b`` to the other;
* :class:`VoteSplitterAdversary` — inspects the round's correct votes
  and sends whatever keeps the correct population maximally divided;
  the strongest practical attack against quorum-threshold protocols
  such as avalanche agreement (Protocol 2);
* :class:`MalformedArrayAdversary` — structurally invalid payloads
  (ragged arrays, wrong widths, multi-value messages) exercising the
  "obviously erroneous, discarded immediately" validation paths;
* :class:`CollusionAdversary` — all faulty processors mirror one
  correct processor's messages to half the recipients and another's to
  the rest, producing traffic that passes all well-formedness checks
  yet is mutually inconsistent (the attack the compact protocol's
  avalanche layer exists to neutralise);
* :class:`StrategyTable` — per-processor heterogeneous strategies.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.adversary.base import Adversary, RoundContext
from repro.types import BOTTOM, ProcessId, Round, Value


def _split_recipients(
    recipients: Sequence[ProcessId],
) -> (list, list):
    """Deterministically split recipients into two halves."""
    ordered = sorted(recipients)
    middle = len(ordered) // 2
    return list(ordered[:middle]), list(ordered[middle:])


class SilentAdversary(Adversary):
    """Faulty processors send no messages at all."""

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        return {}


class RandomGarbageAdversary(Adversary):
    """Sends a random value from ``palette`` to each recipient.

    With no palette, draws from the values seen in the input vector,
    so the garbage is always *plausible* (in ``V``) — a harder case
    than detectable junk.
    """

    def __init__(
        self, faulty_ids: Iterable[ProcessId], palette: Optional[Sequence[Value]] = None
    ):
        super().__init__(faulty_ids)
        self._palette = list(palette) if palette is not None else None

    def _values(self, context: RoundContext) -> List[Value]:
        if self._palette:
            return self._palette
        seen = sorted(set(context.inputs.values()), key=repr)
        return seen or [0]

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        palette = self._values(context)
        return {
            receiver: palette[int(self.rng.integers(0, len(palette)))]
            for receiver in self.config.process_ids
        }


class EquivocatingAdversary(Adversary):
    """Classic two-faced behaviour: ``value_a`` to half, ``value_b`` to half."""

    def __init__(
        self,
        faulty_ids: Iterable[ProcessId],
        value_a: Value,
        value_b: Value,
    ):
        super().__init__(faulty_ids)
        self.value_a = value_a
        self.value_b = value_b

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        low_half, high_half = _split_recipients(self.config.process_ids)
        messages: Dict[ProcessId, Any] = {}
        for receiver in low_half:
            messages[receiver] = self.value_a
        for receiver in high_half:
            messages[receiver] = self.value_b
        return messages


class VoteSplitterAdversary(Adversary):
    """Keeps a voting protocol's correct population divided.

    Tallies the round's correct messages (treated as votes), finds the
    two leading values, and sends the leader to recipients it wants to
    starve and the runner-up to the rest — the adversarial schedule
    that maximises the chance no value reaches a ``2t + 1`` quorum.
    """

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        tally: Dict[Value, int] = {}
        for correct_sender in context.correct_senders():
            vote = context.correct_message(correct_sender, sender)
            if vote is BOTTOM:
                continue
            if isinstance(vote, tuple):
                continue  # not a scalar vote; skip
            try:
                tally[vote] = tally.get(vote, 0) + 1
            except TypeError:
                continue  # unhashable payload: nothing to split on
        ranked = sorted(tally.items(), key=lambda item: (-item[1], repr(item[0])))
        if not ranked:
            return {}
        leader = ranked[0][0]
        runner_up = ranked[1][0] if len(ranked) > 1 else leader
        low_half, high_half = _split_recipients(self.config.process_ids)
        messages: Dict[ProcessId, Any] = {}
        for receiver in low_half:
            messages[receiver] = runner_up
        for receiver in high_half:
            messages[receiver] = leader
        return messages


class MalformedArrayAdversary(Adversary):
    """Sends structurally invalid payloads to exercise validation.

    Rotates through a menu of malformations: ragged tuples, wrong-width
    tuples, over-deep nesting, and Python objects that are not legal
    values at all.  A correct implementation must shrug all of these
    off (discard and substitute), never crash.
    """

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        n = self.config.n
        menu: List[Any] = [
            tuple(0 for _ in range(n + 1)),          # wrong width
            ((0,), 0) + tuple(0 for _ in range(n - 2)) if n >= 2 else (0,),
            tuple(((0,) * n,) for _ in range(n)),     # ragged depth
            object(),                                  # unhashable-ish junk
            ("two", "values"),
        ]
        messages: Dict[ProcessId, Any] = {}
        for index, receiver in enumerate(self.config.process_ids):
            messages[receiver] = menu[(round_number + index) % len(menu)]
        return messages


class CollusionAdversary(Adversary):
    """Mirrors real correct traffic, inconsistently, to different halves.

    To half the recipients each faulty processor replays the messages
    of correct processor ``mimic_a``; to the other half, those of
    ``mimic_b``.  Every message is well-formed and expandable — the
    inconsistency is only visible by comparing recipients' views, which
    is exactly what avalanche agreement forces the system to do.
    """

    def __init__(
        self,
        faulty_ids: Iterable[ProcessId],
        mimic_a: Optional[ProcessId] = None,
        mimic_b: Optional[ProcessId] = None,
    ):
        super().__init__(faulty_ids)
        self._mimic_a = mimic_a
        self._mimic_b = mimic_b

    def _pick_mimics(self, context: RoundContext) -> (ProcessId, ProcessId):
        correct = sorted(context.correct_senders())
        if not correct:
            return (0, 0)
        mimic_a = self._mimic_a if self._mimic_a in correct else correct[0]
        mimic_b = self._mimic_b if self._mimic_b in correct else correct[-1]
        return mimic_a, mimic_b

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        mimic_a, mimic_b = self._pick_mimics(context)
        if not mimic_a:
            return {}
        low_half, high_half = _split_recipients(self.config.process_ids)
        messages: Dict[ProcessId, Any] = {}
        for receiver in low_half:
            messages[receiver] = context.correct_message(mimic_a, receiver)
        for receiver in high_half:
            messages[receiver] = context.correct_message(mimic_b, receiver)
        return messages


class StrategyTable(Adversary):
    """Heterogeneous faults: a different strategy per faulty processor.

    Wraps single-processor strategies; each sub-strategy is bound with
    the same configuration and a derived RNG substream.
    """

    def __init__(self, strategies: Mapping[ProcessId, Adversary]):
        super().__init__(strategies.keys())
        self._strategies = dict(strategies)

    def bind(self, config, rng) -> None:  # type: ignore[override]
        super().bind(config, rng)
        for process_id, strategy in sorted(self._strategies.items()):
            # Sub-strategies may declare fewer faulty ids than they are
            # assigned; rebind them to their own slot.
            strategy.faulty_ids = frozenset({process_id})
            strategy.bind(config, rng)

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        return self._strategies[sender].outgoing(round_number, sender, context)

    def observe_round(self, round_number, context, faulty_outgoing) -> None:
        # Ghost-running sub-strategies (crash, omission) need the
        # end-of-round hook to keep their honest copies in step.
        for _, strategy in sorted(self._strategies.items()):
            strategy.observe_round(round_number, context, faulty_outgoing)
