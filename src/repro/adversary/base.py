"""The adversary interface.

An adversary owns a fixed set of faulty processors for the whole
execution (the paper's fault set ``F``) and, each round, chooses the
messages those processors deliver to every destination.  It is handed
a :class:`RoundContext` exposing:

* the system configuration and the inputs (including the faulty
  processors' own inputs, which exist in the input vector ``I``),
* the messages all *correct* processors are sending this round —
  fixed before the adversary speaks, so the adversary "rushes",
* read access to correct processors' protocol objects for
  state-inspecting strategies (e.g. a vote splitter that keeps the
  correct population divided).

Correct-process code never sees this module; the network applies it.
"""

from __future__ import annotations

import abc
import types
from typing import Any, Dict, Iterable, Mapping, Optional

import numpy as np

from repro.errors import ConfigurationError
from repro.runtime.rng import make_rng
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value


class RoundContext:
    """Everything an adversary may look at when choosing messages."""

    def __init__(
        self,
        config: SystemConfig,
        round_number: Round,
        correct_outgoing: Mapping[ProcessId, Mapping[ProcessId, Any]],
        processes: Mapping[ProcessId, Any],
        inputs: Mapping[ProcessId, Value],
    ):
        self.config = config
        self.round_number = round_number
        # Read-only views, not copies: the network delivers from these
        # same dicts *after* the adversary speaks, so a mutating
        # strategy writing through this mapping would silently corrupt
        # correct processors' sends.  MappingProxyType blocks writes at
        # zero copying cost (contexts are built every round).
        self._correct_outgoing = types.MappingProxyType({
            sender: types.MappingProxyType(messages)
            for sender, messages in correct_outgoing.items()
        })
        self._processes = processes
        self.inputs = dict(inputs)

    @property
    def correct_outgoing(
        self,
    ) -> Mapping[ProcessId, Mapping[ProcessId, Any]]:
        """All correct traffic this round, as a read-only mapping."""
        return self._correct_outgoing

    def correct_message(self, sender: ProcessId, receiver: ProcessId) -> Any:
        """The message a correct ``sender`` is sending ``receiver`` now."""
        sender_row = self._correct_outgoing.get(sender)
        if sender_row is None:
            return BOTTOM
        return sender_row.get(receiver, BOTTOM)

    def correct_senders(self) -> Iterable[ProcessId]:
        """Ids of correct processors with traffic this round."""
        return self._correct_outgoing.keys()

    def sample_correct_message(self, receiver: ProcessId) -> Any:
        """Any one correct processor's message to ``receiver``.

        Convenient for strategies that mimic plausible traffic; returns
        :data:`BOTTOM` if no correct processor sent anything.
        """
        for sender in sorted(self._correct_outgoing):
            message = self._correct_outgoing[sender].get(receiver, BOTTOM)
            if message is not BOTTOM:
                return message
        return BOTTOM

    def process(self, process_id: ProcessId) -> Any:
        """Read access to a correct processor's protocol object."""
        return self._processes.get(process_id)


class Adversary(abc.ABC):
    """Chooses the faulty processors' messages each round."""

    def __init__(self, faulty_ids: Iterable[ProcessId]):
        self.faulty_ids = frozenset(faulty_ids)
        self._rng: Optional[np.random.Generator] = None
        self._config: Optional[SystemConfig] = None

    def bind(self, config: SystemConfig, rng: np.random.Generator) -> None:
        """Attach configuration and an RNG substream (engine calls this)."""
        if len(self.faulty_ids) > config.t:
            raise ConfigurationError(
                f"adversary corrupts {len(self.faulty_ids)} processors but "
                f"t={config.t}"
            )
        for process_id in self.faulty_ids:
            if not 1 <= process_id <= config.n:
                raise ConfigurationError(
                    f"faulty id {process_id} outside 1..{config.n}"
                )
        self._config = config
        self._rng = rng

    @property
    def rng(self) -> np.random.Generator:
        """The adversary's RNG substream (available after ``bind``)."""
        if self._rng is None:
            self._rng = make_rng(0)
        return self._rng

    @property
    def config(self) -> SystemConfig:
        if self._config is None:
            raise ConfigurationError("adversary used before bind()")
        return self._config

    @abc.abstractmethod
    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        """Messages faulty ``sender`` delivers this round.

        Destinations omitted from the returned map deliver
        :data:`BOTTOM` (i.e. the recipient detects a missing message,
        as the synchronous model permits).
        """

    def observe_round(
        self,
        round_number: Round,
        context: RoundContext,
        faulty_outgoing: Mapping[ProcessId, Mapping[ProcessId, Any]],
    ) -> None:
        """Hook called once per round after all messages are fixed.

        Benign-fault adversaries (crash, omission) run "ghost" copies
        of the real protocol for their processors; this hook feeds the
        ghosts their incoming messages so they stay in step.  The
        default is a no-op.
        """


class PassiveAdversary(Adversary):
    """No faults at all — the fault-free baseline execution."""

    def __init__(self) -> None:
        super().__init__(faulty_ids=())

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        raise AssertionError("PassiveAdversary owns no processors")
