"""Failure-by-omission faults.

An omission-faulty processor runs its protocol correctly but some of
its messages are lost: each message it sends is independently dropped
with probability ``drop_probability`` (send omissions).  It never lies
— this sits strictly between fail-stop and Byzantine, and is the other
benign model named in Section 1.

As with :class:`repro.adversary.crash.CrashAdversary`, ghost instances
of the real protocol produce the honest messages; the adversary then
drops a random subset.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Mapping, Optional

from repro.adversary.base import Adversary, RoundContext
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value

GhostFactory = Callable[[ProcessId, SystemConfig, Value], Any]


class OmissionAdversary(Adversary):
    """Honest ghosts with randomly dropped outgoing messages."""

    def __init__(
        self,
        faulty_ids: Iterable[ProcessId],
        factory: GhostFactory,
        drop_probability: float = 0.3,
    ):
        super().__init__(faulty_ids)
        if not 0.0 <= drop_probability <= 1.0:
            raise ValueError(
                f"drop_probability must be in [0, 1], got {drop_probability}"
            )
        self._factory = factory
        self.drop_probability = drop_probability
        self._ghosts: Optional[Dict[ProcessId, Any]] = None

    def _ensure_ghosts(self, context: RoundContext) -> Dict[ProcessId, Any]:
        if self._ghosts is None:
            self._ghosts = {
                process_id: self._factory(
                    process_id, self.config, context.inputs[process_id]
                )
                for process_id in sorted(self.faulty_ids)
            }
        return self._ghosts

    def ghost(self, process_id: ProcessId) -> Any:
        """The ghost process object (for tests), or ``None`` pre-start."""
        if self._ghosts is None:
            return None
        return self._ghosts.get(process_id)

    def outgoing(
        self, round_number: Round, sender: ProcessId, context: RoundContext
    ) -> Dict[ProcessId, Any]:
        ghosts = self._ensure_ghosts(context)
        honest = dict(ghosts[sender].outgoing(round_number))
        delivered: Dict[ProcessId, Any] = {}
        for receiver in sorted(honest):
            if self.rng.random() >= self.drop_probability:
                delivered[receiver] = honest[receiver]
        return delivered

    def observe_round(
        self,
        round_number: Round,
        context: RoundContext,
        faulty_outgoing: Mapping[ProcessId, Mapping[ProcessId, Any]],
    ) -> None:
        if self._ghosts is None:
            return
        for process_id, ghost in self._ghosts.items():
            incoming: Dict[ProcessId, Any] = {}
            for sender in self.config.process_ids:
                if sender in self.faulty_ids:
                    incoming[sender] = faulty_outgoing.get(sender, {}).get(
                        process_id, BOTTOM
                    )
                else:
                    incoming[sender] = context.correct_message(sender, process_id)
            ghost.receive(round_number, incoming)
