"""Protocol 2: the avalanche agreement protocol.

::

    Initialization for processor p:
        VAL <- the initial value of processor p       (possibly none)
    Code for processor p in round r:
        1. broadcast VAL
        2. receive MSG_q from processor q for 1 <= q <= n
        3. let ANS be the most frequent non-bottom message (ties broken
           arbitrarily — here: deterministically)
        4. let NUM be the number of occurrences of ANS
        5. if r = 1 then
        6.     if NUM >= 2t+1 then VAL <- ANS else VAL <- bottom
        7. if r > 1 then
        8.     if NUM >= t+1  then VAL <- ANS
        9.     if NUM >= 2t+1 and have not decided yet then decide VAL

Processors keep participating after deciding.  A message carrying more
than one value is "obviously erroneous and discarded immediately" —
here, anything that is not a scalar legal value is discarded.

**Threshold generalisation.**  The paper states Protocol 2 for the
tight case ``n = 3t + 1``, where Lemma 3 (at most one persistent
value) uses ``2t + 1``-vote quorums overlapping in a correct
processor: ``2 * (2t+1) - (3t+1) = t + 1 > t``.  For ``n > 3t + 1``
that arithmetic needs the round-1 adoption quorum raised to any
``theta`` with ``2 * theta - n > t``; we use the least such,
``theta = floor((n + t) / 2) + 1``, which equals ``2t + 1`` when
``n = 3t + 1``.  The adoption (``t + 1``) and decision (``2t + 1``)
thresholds of later rounds are correct for every ``n >= 3t + 1``
unchanged.  Tests cover both the tight and the generalised case.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom


#: Protoflow taint: the tally is the protocol's vote filter — illegal
#: votes are discarded and the survivor is a quorum count's argmax.
TAINT_SANITIZERS = {
    "_tally": (
        "discards non-scalar / unhashable / value_ok-rejected votes "
        "and returns the most frequent legal survivor; every VAL "
        "update and decision compares its count against an adoption "
        "or decision quorum"
    ),
    "_vote_is_legal": (
        "the per-vote legality predicate behind _tally; a vote it "
        "accepts is a hashable scalar from the configured value space"
    ),
}

#: Protoflow message-size bounds (COM rule family).
MESSAGE_BOUNDS = {
    "AvalancheProcess": (
        "constant",
        "the round message is VAL: one scalar vote (possibly BOTTOM), "
        "never a collection",
    ),
}


@dataclasses.dataclass(frozen=True)
class Thresholds:
    """Vote quorums for one avalanche-style protocol.

    ``round1_decide`` is ``None`` for standard avalanche agreement
    (no round-1 decisions); the fast variant sets it to ``n - t``.
    """

    round1_adopt: int
    later_adopt: int
    decide: int
    round1_decide: Optional[int] = None


def standard_thresholds(config: SystemConfig) -> Thresholds:
    """Protocol 2 thresholds, generalised to any ``n >= 3t + 1``."""
    if not config.requires_byzantine_quorum():
        raise ConfigurationError(
            f"avalanche agreement needs n >= 3t+1; got n={config.n}, t={config.t}"
        )
    return Thresholds(
        round1_adopt=(config.n + config.t) // 2 + 1,
        later_adopt=config.t + 1,
        decide=2 * config.t + 1,
        round1_decide=None,
    )


class AvalancheInstance:
    """One processor's Protocol 2 state machine, runtime-agnostic.

    The compact full-information protocol runs many of these in
    parallel as subprotocol components (Section 5.2); the standalone
    :class:`AvalancheProcess` wraps a single one.  Drive it with
    :meth:`message` (what to broadcast this round) followed by
    :meth:`step` (the round's received votes).
    """

    def __init__(
        self,
        config: SystemConfig,
        input_value: Value = BOTTOM,
        thresholds: Optional[Thresholds] = None,
        value_ok: Optional[Callable[[Any], bool]] = None,
    ):
        """
        Parameters
        ----------
        input_value:
            The processor's input, or :data:`BOTTOM` for "no input"
            (legal — some processors may begin with no input).
        thresholds:
            Defaults to :func:`standard_thresholds`.
        value_ok:
            Extra vote validation; votes failing it are discarded like
            multi-value messages.  ``None`` accepts any hashable
            scalar.
        """
        self.config = config
        self.thresholds = thresholds or standard_thresholds(config)
        self.val: Value = input_value
        self.input_value: Value = input_value
        self._value_ok = value_ok
        self.rounds_completed = 0
        self.decision: Value = BOTTOM
        self.decision_round: Optional[int] = None

    # -- round interface -------------------------------------------------

    def message(self) -> Value:
        """The vote to broadcast in the coming round (may be BOTTOM)."""
        return self.val

    def step(self, votes: Sequence[Any]) -> None:
        """Consume one round of received votes (one slot per processor).

        ``votes[q - 1]`` is the raw message from processor ``q``; any
        non-scalar, unhashable, or ``value_ok``-rejected entry is
        discarded, exactly like the paper's "obviously erroneous"
        messages.
        """
        if len(votes) != self.config.n:
            raise ConfigurationError(
                f"expected {self.config.n} vote slots, got {len(votes)}"
            )
        self.rounds_completed += 1
        answer, count = self._tally(votes)
        if self.rounds_completed == 1:
            if count >= self.thresholds.round1_adopt:
                self.val = answer
            else:
                self.val = BOTTOM
            if (
                self.thresholds.round1_decide is not None
                and count >= self.thresholds.round1_decide
            ):
                self._decide(answer)
        else:
            if count >= self.thresholds.later_adopt:
                self.val = answer
            if count >= self.thresholds.decide and not self.has_decided():
                self._decide(self.val)

    # -- internals -----------------------------------------------------------

    def _tally(self, votes: Sequence[Any]) -> Tuple[Value, int]:
        """The most frequent legal vote and its count.

        Ties are broken deterministically (lowest ``repr``), which is
        one way of the paper's "break ties arbitrarily".
        """
        # The legality predicate is inlined (see _vote_is_legal, kept
        # as the declared single point of truth): this loop runs once
        # per received vote slot system-wide.
        value_ok = self._value_ok
        legal: List[Any] = []
        for vote in votes:
            if vote is BOTTOM or vote is None:
                continue
            if value_ok is not None and not value_ok(vote):
                continue
            legal.append(vote)
        if not legal:
            return BOTTOM, 0
        # A healthy round is homogeneous — every legal vote equals the
        # first — and needs no counting dict at all.  The hash probe
        # (the "obviously erroneous" filter for unhashable garbage)
        # still runs, once, on the representative.
        first = legal[0]
        homogeneous = True
        for vote in legal:
            if vote is not first and vote != first:
                homogeneous = False
                break
        if homogeneous:
            try:
                hash(first)
            except TypeError:  # unhashable — "obviously erroneous"
                return BOTTOM, 0
            return first, len(legal)
        counts: Dict[Value, int] = {}
        for vote in legal:
            try:
                seen = counts.get(vote, 0)
            except TypeError:
                continue
            counts[vote] = seen + 1
        if not counts:
            return BOTTOM, 0
        # Single pass for the max count; repr (the deterministic
        # tie-break) is only computed when two values actually tie,
        # which almost never happens in a healthy round.
        best: Value = BOTTOM
        best_count = 0
        tied = False
        for vote, count in counts.items():
            if count > best_count:
                best, best_count, tied = vote, count, False
            elif count == best_count:
                tied = True
        if tied:
            best = min(
                (v for v, c in counts.items() if c == best_count), key=repr
            )
        return best, best_count

    def _vote_is_legal(self, vote: Any) -> bool:
        if vote is BOTTOM or vote is None:  # is_bottom, inlined: this
            # predicate runs once per received vote slot system-wide.
            return False
        try:
            hash(vote)
        except TypeError:
            return False
        if self._value_ok is not None and not self._value_ok(vote):
            return False
        return True

    def _decide(self, value: Value) -> None:
        if is_bottom(value):
            # A decide-quorum for a value always sets VAL to it first;
            # reaching here would mean the tally machinery is broken.
            raise ConfigurationError("avalanche attempted to decide BOTTOM")
        self.decision = value
        self.decision_round = self.rounds_completed

    def has_decided(self) -> bool:
        """Whether this instance has irrevocably decided."""
        return not is_bottom(self.decision)


class AvalancheProcess(Process):
    """Protocol 2 as a standalone runtime process (experiment E1)."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        thresholds: Optional[Thresholds] = None,
    ):
        super().__init__(process_id, config)
        self.instance = AvalancheInstance(
            config, input_value=input_value, thresholds=thresholds
        )

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return broadcast(self.instance.message(), self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        votes = [incoming[sender] for sender in self.config.process_ids]
        self.instance.step(votes)
        if self.instance.has_decided() and not self.has_decided():
            self.decide(self.instance.decision, round_number)

    def snapshot(self) -> Any:
        return {
            "val": self.instance.val,
            "decision": self.instance.decision,
        }


def avalanche_factory(thresholds: Optional[Thresholds] = None):
    """A run_protocol factory for standalone avalanche agreement."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> AvalancheProcess:
        return AvalancheProcess(
            process_id, config, input_value, thresholds=thresholds
        )

    return factory
