"""The null-message coding convention (end of Section 4).

    "A processor that wishes to send the same message that it sent in
    the previous round instead sends the null message (at a cost of 0
    bits).  It is easy to show that using this convention each correct
    processor sends at most 3 non-null messages in any execution."

Why 3: a correct processor's broadcast sequence in Protocol 2 is its
input ``v`` (round 1), then either bottom or the persistent value
``w``, with the only possible later transition being bottom -> ``w``
(Lemma 4 plus the adoption rule).  The sequence therefore has at most
three runs — e.g. ``v, bottom, ..., bottom, w, w, ...`` — and only the
first element of each run is non-null.

:class:`NullEncoder` (sender side) and :class:`NullDecoder` (receiver
side) implement the convention for broadcast channels.  The metrics
layer charges :data:`NULL_MESSAGE` zero bits via the network's
``is_null``/``sizer`` hooks.
"""

from __future__ import annotations

from typing import Any, Dict

from repro.types import BOTTOM, ProcessId


class _NullMessage:
    """Singleton wire marker: "same as my previous round's message"."""

    _instance = None

    def __new__(cls) -> "_NullMessage":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "NULL_MESSAGE"

    def __reduce__(self):
        return (_NullMessage, ())


NULL_MESSAGE = _NullMessage()


def is_null_message(message: Any) -> bool:
    """Whether ``message`` is the coding convention's null marker."""
    return message is NULL_MESSAGE


class NullEncoder:
    """Sender-side state: replaces repeats of the last broadcast by null.

    The convention is defined for broadcast traffic (Protocol 2
    broadcasts), so one remembered value per encoder suffices.
    """

    def __init__(self) -> None:
        self._last: Any = _UNSET

    def encode(self, message: Any) -> Any:
        """Return ``message`` or :data:`NULL_MESSAGE` if it repeats."""
        if self._last is not _UNSET and message == self._last:
            return NULL_MESSAGE
        self._last = message
        return message


class NullDecoder:
    """Receiver-side state: expands null back to the sender's last value.

    Tracks one remembered message per sender.  A null from a sender
    that has never sent a real message decodes to :data:`BOTTOM` —
    only a faulty sender can produce that, and bottom is exactly how
    the protocols treat garbage.
    """

    def __init__(self) -> None:
        self._last: Dict[ProcessId, Any] = {}

    def decode(self, sender: ProcessId, message: Any) -> Any:
        """Expand ``message`` from ``sender``; remembers real values."""
        # Identity test inlined (is_null_message): decode runs n**2
        # times per subprotocol round and the call overhead shows up
        # in sweep profiles.
        if message is NULL_MESSAGE:
            return self._last.get(sender, BOTTOM)
        self._last[sender] = message
        return message


class _Unset:
    _instance = None

    def __new__(cls) -> "_Unset":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "UNSET"


_UNSET = _Unset()
