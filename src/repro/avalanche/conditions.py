"""Executable checkers for the three avalanche agreement conditions.

Each checker inspects a finished (possibly non-deciding) execution and
returns a list of human-readable violations — empty means the
condition holds on that execution.  Tests assert emptiness across
adversary sweeps; experiment E1 reports the aggregate.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence

from repro.types import BOTTOM, ProcessId, Value, is_bottom


def check_avalanche_condition(
    decisions: Mapping[ProcessId, Value],
    decision_rounds: Mapping[ProcessId, Optional[int]],
    correct_ids: Sequence[ProcessId],
    rounds_run: int,
) -> List[str]:
    """If any correct processor decides ``v`` in round ``r``, all
    correct processors decide ``v`` by round ``r + 1``.

    Executions cut off at ``rounds_run`` can only be judged for
    decisions made strictly before the cut, so a decision in the very
    last observed round imposes no obligation here (the window extends
    past the observation).
    """
    violations: List[str] = []
    decided = [
        (decision_rounds[process_id], process_id)
        for process_id in correct_ids
        if not is_bottom(decisions.get(process_id, BOTTOM))
    ]
    if not decided:
        return violations

    values = {decisions[process_id] for _, process_id in decided}
    if len(values) > 1:
        violations.append(f"correct processors decided differing values {values}")

    first_round, first_id = min(decided)
    if first_round is None or first_round >= rounds_run:
        return violations
    deadline = first_round + 1
    for process_id in correct_ids:
        round_decided = decision_rounds.get(process_id)
        if is_bottom(decisions.get(process_id, BOTTOM)):
            violations.append(
                f"processor {first_id} decided in round {first_round} but "
                f"processor {process_id} never decided (ran {rounds_run} rounds)"
            )
        elif round_decided is not None and round_decided > deadline:
            violations.append(
                f"processor {process_id} decided in round {round_decided}, "
                f"after the avalanche deadline {deadline}"
            )
    return violations


def check_consensus_condition(
    decisions: Mapping[ProcessId, Value],
    decision_rounds: Mapping[ProcessId, Optional[int]],
    inputs: Mapping[ProcessId, Value],
    correct_ids: Sequence[ProcessId],
    rounds_run: int,
    deadline: int = 2,
) -> List[str]:
    """Unanimous correct input ``v`` forces a decision of ``v`` by
    round ``deadline`` (2 for Protocol 2; 1 for the fast variant)."""
    violations: List[str] = []
    correct_inputs = {inputs[process_id] for process_id in correct_ids}
    if len(correct_inputs) != 1:
        return violations
    (unanimous,) = correct_inputs
    if is_bottom(unanimous):
        return violations
    if rounds_run < deadline:
        return violations  # execution too short to judge
    for process_id in correct_ids:
        decision = decisions.get(process_id, BOTTOM)
        round_decided = decision_rounds.get(process_id)
        if is_bottom(decision):
            violations.append(
                f"unanimous input {unanimous!r} but processor {process_id} "
                f"did not decide within {rounds_run} rounds"
            )
        elif decision != unanimous:
            violations.append(
                f"unanimous input {unanimous!r} but processor {process_id} "
                f"decided {decision!r}"
            )
        elif round_decided is not None and round_decided > deadline:
            violations.append(
                f"unanimous input but processor {process_id} decided in round "
                f"{round_decided} > deadline {deadline}"
            )
    return violations


def check_plausibility_condition(
    decisions: Mapping[ProcessId, Value],
    inputs: Mapping[ProcessId, Value],
    correct_ids: Sequence[ProcessId],
) -> List[str]:
    """Every decided value was the input of some correct processor."""
    violations: List[str] = []
    correct_inputs = {
        inputs[process_id]
        for process_id in correct_ids
        if not is_bottom(inputs[process_id])
    }
    for process_id in correct_ids:
        decision = decisions.get(process_id, BOTTOM)
        if is_bottom(decision):
            continue
        if decision not in correct_inputs:
            violations.append(
                f"processor {process_id} decided {decision!r}, which was no "
                f"correct processor's input"
            )
    return violations
