"""The fast avalanche variant (``n >= 4t + 1``).

Section 4 of the paper: strengthening the consensus condition to
require a decision in *one* round rather than two is impossible for
``n <= 4t`` and "easy to solve using a simple variant of Protocol 2"
for ``n >= 4t + 1`` (details omitted there).  Section 5.6 uses this
variant to shave one round off every block of the compact protocol.

**Reconstruction.**  The variant below keeps Protocol 2's structure
and changes only the quorums; each choice is forced by the conditions:

* ``round1_decide = n - t`` — a unanimous correct input gives every
  correct processor at least ``n - t`` round-1 votes, so deciding at
  that quorum closes the strengthened consensus condition in round 1;
* ``round1_adopt = n - 2t`` — a round-1 decision for ``v`` implies at
  least ``n - 2t`` *correct* round-1 votes for ``v``, so every correct
  processor sees at least ``n - 2t`` votes for ``v`` and at most
  ``2t < n - 2t`` for anything else (using ``n > 4t``); all therefore
  adopt ``v``, and the avalanche completes one round later;
* ``decide = n - t`` in later rounds — deciding ``v`` then implies at
  least ``n - 2t`` correct voters for ``v`` this round, which (again
  by ``n > 4t``) out-votes everything else at every correct processor,
  forcing system-wide adoption and a decision everywhere in the next
  round; it also makes a second decided value impossible, since a
  competing value can muster at most ``2t < n - t`` votes once ``v``
  holds a correct majority;
* ``later_adopt = t + 1`` — unchanged from Protocol 2 (one correct
  supporter suffices for plausibility).

At the boundary ``n = 4t + 1`` these read ``2t + 1`` / ``3t + 1``,
i.e. Protocol 2 with the decision quorum raised by ``t`` — exactly a
"simple variant".  The property-based tests in
``tests/avalanche/test_fast.py`` check all three conditions (with the
one-round consensus strengthening) against adversarial executions.
"""

from __future__ import annotations

from repro.avalanche.protocol import AvalancheInstance, Thresholds
from repro.errors import ConfigurationError
from repro.types import BOTTOM, SystemConfig, Value


def fast_thresholds(config: SystemConfig) -> Thresholds:
    """Quorums for the one-round-consensus variant (``n >= 4t + 1``)."""
    if not config.requires_fast_quorum():
        raise ConfigurationError(
            f"fast avalanche needs n >= 4t+1; got n={config.n}, t={config.t}"
        )
    return Thresholds(
        round1_adopt=config.n - 2 * config.t,
        later_adopt=config.t + 1,
        decide=config.n - config.t,
        round1_decide=config.n - config.t,
    )


class FastAvalancheInstance(AvalancheInstance):
    """An :class:`AvalancheInstance` preconfigured with fast quorums."""

    def __init__(
        self,
        config: SystemConfig,
        input_value: Value = BOTTOM,
        value_ok=None,
    ):
        super().__init__(
            config,
            input_value=input_value,
            thresholds=fast_thresholds(config),
            value_ok=value_ok,
        )
