"""Avalanche agreement (Section 4).

The paper's new agreement primitive and the building block of the
compact full-information protocol.  Correct processors must satisfy:

* **avalanche** — if any correct processor decides ``v`` in round
  ``r`` then all correct processors decide ``v`` by round ``r + 1``,
* **consensus** — if all correct processors start with input ``v``
  then all decide ``v`` by round 2,
* **plausibility** — any decided value was the input of some correct
  processor.

Executions need not terminate; processors may start with no input
(:data:`repro.types.BOTTOM`).  ``n >= 3t + 1`` is necessary and
sufficient; Protocol 2 achieves it.

* :mod:`repro.avalanche.protocol` — Protocol 2 as a reusable state
  machine (:class:`AvalancheInstance`) plus a standalone runtime
  process,
* :mod:`repro.avalanche.fast` — the ``n >= 4t + 1`` variant whose
  consensus condition closes in one round (used in Section 5.6 to
  shrink blocks by one round),
* :mod:`repro.avalanche.coding` — the null-message convention that
  caps each correct processor at 3 non-null messages per execution,
* :mod:`repro.avalanche.conditions` — executable checkers for the
  three conditions, used by tests and experiment E1.
"""

from repro.avalanche.protocol import (
    AvalancheInstance,
    AvalancheProcess,
    Thresholds,
    avalanche_factory,
    standard_thresholds,
)
from repro.avalanche.fast import FastAvalancheInstance, fast_thresholds
from repro.avalanche.coding import (
    NULL_MESSAGE,
    NullDecoder,
    NullEncoder,
    is_null_message,
)
from repro.avalanche.conditions import (
    check_avalanche_condition,
    check_consensus_condition,
    check_plausibility_condition,
)

__all__ = [
    "AvalancheInstance",
    "AvalancheProcess",
    "Thresholds",
    "avalanche_factory",
    "standard_thresholds",
    "FastAvalancheInstance",
    "fast_thresholds",
    "NULL_MESSAGE",
    "NullDecoder",
    "NullEncoder",
    "is_null_message",
    "check_avalanche_condition",
    "check_consensus_condition",
    "check_plausibility_condition",
]
