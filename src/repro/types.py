"""Shared type aliases and small value types used across the library.

The paper (Coan, PODC 1986) models a synchronous system of ``n``
processors, numbered ``1..n``, of which at most ``t`` may be faulty.
We keep the paper's 1-based processor numbering throughout the public
API so that code can be read side by side with the paper; ranges over
processors are always ``range(1, n + 1)``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, FrozenSet, Hashable, Tuple

# A processor identifier.  The paper numbers processors 1..n.
ProcessId = int

# A round number.  Rounds are 1-based: the first round of a protocol is
# round 1, matching the paper.  Round 0 denotes "before the protocol
# starts" where that distinction matters (e.g. initial states).
Round = int

# An input/decision value.  The paper only requires a finite set V of
# legal inputs; we require hashability so values can be counted, used as
# dictionary keys, and compared for equality in vote tallies.
Value = Hashable

# The paper's "bottom" (no value / undecided / no input).  ``None`` is
# deliberately NOT used for this so that protocols may legitimately
# carry ``None`` payloads without colliding with "absent".
class _Bottom:
    """The unique "no value" marker (the paper's bottom element).

    A singleton: every module compares against :data:`BOTTOM` with
    ``is``.  It is falsy, hashable and has a stable repr so it can
    appear inside message tuples and test output.
    """

    _instance = None

    def __new__(cls) -> "_Bottom":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "BOTTOM"

    def __bool__(self) -> bool:
        return False

    def __reduce__(self):
        # Pickle back to the singleton, preserving ``is`` identity.
        return (_Bottom, ())


BOTTOM = _Bottom()


def is_bottom(value: Any) -> bool:
    """Return ``True`` if ``value`` is the bottom (absent) marker."""
    return value is BOTTOM


@dataclasses.dataclass(frozen=True)
class SystemConfig:
    """Static parameters of a synchronous system.

    Parameters
    ----------
    n:
        Total number of processors.
    t:
        Upper bound on the number of faulty processors the protocol
        must tolerate.
    """

    n: int
    t: int

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.t < 0:
            raise ValueError(f"t must be non-negative, got {self.t}")
        if self.t >= self.n:
            raise ValueError(
                f"t must be smaller than n, got n={self.n}, t={self.t}"
            )

    @property
    def process_ids(self) -> Tuple[ProcessId, ...]:
        """All processor ids, 1-based as in the paper."""
        return tuple(range(1, self.n + 1))

    def requires_byzantine_quorum(self) -> bool:
        """Whether ``n >= 3t + 1`` (the Byzantine agreement threshold)."""
        return self.n >= 3 * self.t + 1

    def requires_fast_quorum(self) -> bool:
        """Whether ``n >= 4t + 1`` (the fast avalanche-variant threshold)."""
        return self.n >= 4 * self.t + 1


# A set of faulty processors, as recorded in an execution tuple
# (k, F, I, M) from Section 3.1 of the paper.
FaultSet = FrozenSet[ProcessId]
