"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

import dataclasses
from typing import Any, Dict


@dataclasses.dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at ``path:line``.

    ``symbol`` is the dotted lexical context (``Class.method`` or a
    function name, ``<module>`` at top level); baseline suppressions
    match on ``(rule, path, symbol)`` rather than on line numbers so
    they survive unrelated edits to the file.
    """

    path: str
    line: int
    col: int
    rule: str
    symbol: str
    message: str

    @property
    def suppression_key(self) -> str:
        """The stable identity used by the baseline file."""
        return f"{self.rule}:{self.path}:{self.symbol}"

    def to_json(self) -> Dict[str, Any]:
        """The machine-readable form emitted by ``--format json``."""
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
        }
