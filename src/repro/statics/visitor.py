"""Shared AST plumbing for the lint passes."""

from __future__ import annotations

import ast
from typing import List, Optional

from repro.statics.findings import Finding
from repro.statics.rules import Rule


def attribute_chain(node: ast.AST) -> Optional[List[str]]:
    """``a.b.c`` as ``["a", "b", "c"]``, or ``None`` if not a pure chain."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def annotation_names_set(annotation: Optional[ast.AST]) -> bool:
    """Whether a type annotation denotes a set (``Set``/``FrozenSet``/...)."""
    if annotation is None:
        return False
    for node in ast.walk(annotation):
        name = None
        if isinstance(node, ast.Name):
            name = node.id
        elif isinstance(node, ast.Attribute):
            name = node.attr
        elif isinstance(node, ast.Constant) and isinstance(node.value, str):
            name = node.value.split("[")[0].strip()
        if name in ("Set", "FrozenSet", "MutableSet", "set", "frozenset"):
            return True
    return False


class ScopedVisitor(ast.NodeVisitor):
    """An ``ast.NodeVisitor`` that tracks the dotted lexical context.

    Subclasses call :meth:`add` to emit a :class:`Finding` whose
    ``symbol`` is the enclosing ``Class.method`` path, giving baseline
    suppressions a line-number-free identity.
    """

    def __init__(self, path: str):
        self.path = path
        self.findings: List[Finding] = []
        self._scope: List[str] = []

    @property
    def symbol(self) -> str:
        """The current dotted context, ``<module>`` at top level."""
        return ".".join(self._scope) if self._scope else "<module>"

    def add(self, rule: Rule, node: ast.AST, message: str) -> None:
        """Record one violation of ``rule`` at ``node``."""
        self.findings.append(
            Finding(
                path=self.path,
                line=getattr(node, "lineno", 0),
                col=getattr(node, "col_offset", 0),
                rule=rule.id,
                symbol=self.symbol,
                message=message,
            )
        )

    # -- scope bookkeeping --------------------------------------------------

    def _visit_scoped(self, node: ast.AST, name: str) -> None:
        self._scope.append(name)
        try:
            self.generic_visit(node)
        finally:
            self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._visit_scoped(node, node.name)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._visit_scoped(node, node.name)
