"""The determinism pass: no entropy outside :mod:`repro.runtime.rng`.

Theorem 2 reconstructs a processor's state by *replaying* ``delta_p``
over reconstructed message tuples; Theorem 5's compact protocol
replays whole blocks.  Both silently produce garbage if any protocol
function consults a source of nondeterminism the replay cannot see:
an unseeded RNG, the wall clock, ``os.urandom``, or the
hash-randomized iteration order of a ``set``.  This pass bans those
sources from the protocol packages — all randomness must arrive as an
explicit :class:`numpy.random.Generator` derived via
:func:`repro.runtime.rng.derive_rng` from the run's seed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Set

from repro.statics.findings import Finding
from repro.statics.rules import rule
from repro.statics.visitor import (
    ScopedVisitor,
    annotation_names_set,
    attribute_chain,
)

BANNED_MODULES: Dict[str, str] = {
    "random": "route randomness through repro.runtime.rng instead",
    "secrets": "route randomness through repro.runtime.rng instead",
    "uuid": "uuid reads OS entropy; derive ids from the run seed",
    "time": "protocols advance by rounds, never by the wall clock",
    "datetime": "protocols advance by rounds, never by the wall clock",
}

# Names that are entropy sources even when their module is importable
# for other reasons (``os`` is not banned wholesale).
BANNED_FROM_IMPORTS: Set[str] = {"urandom", "getrandom"}

DET001 = rule(
    "DET001",
    "determinism",
    "banned import",
    "Theorem 2 replays delta_p; modules like random/time inject state "
    "the replay cannot reproduce",
)
DET002 = rule(
    "DET002",
    "determinism",
    "entropy or wall-clock call",
    "a call into an OS entropy pool or clock makes mu/delta/gamma "
    "non-functions, voiding the Section 3.1 formalism",
)
DET003 = rule(
    "DET003",
    "determinism",
    "global numpy randomness",
    "np.random.* bypasses the seed threading of repro.runtime.rng, so "
    "executions stop being replayable from their seed",
)
DET004 = rule(
    "DET004",
    "determinism",
    "iteration over an unordered set",
    "set order depends on PYTHONHASHSEED; iterating one inside a "
    "protocol makes nominally identical executions diverge",
)
DET005 = rule(
    "DET005",
    "determinism",
    "arbitrary element extraction",
    "next(iter(s)) / s.pop() pick a hash-order-dependent element; "
    "Theorem 2's reconstruction would replay a different one",
)


class _DeterminismVisitor(ScopedVisitor):
    def __init__(self, path: str):
        super().__init__(path)
        # Local aliases bound to banned modules / names, per file:
        # ``import random as r`` -> {"r": "random"}.
        self._module_aliases: Dict[str, str] = {}
        self._name_aliases: Dict[str, str] = {}
        # ``self.<attr>`` names annotated as sets, per enclosing class.
        self._set_attrs: List[Set[str]] = []

    # -- imports ------------------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = alias.name.split(".")[0]
            if root in BANNED_MODULES:
                self.add(
                    DET001,
                    node,
                    f"import of {alias.name!r}: {BANNED_MODULES[root]}",
                )
                self._module_aliases[alias.asname or root] = root
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = (node.module or "").split(".")[0]
        if root in BANNED_MODULES:
            self.add(
                DET001,
                node,
                f"import from {node.module!r}: {BANNED_MODULES[root]}",
            )
            for alias in node.names:
                self._name_aliases[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
        elif root == "os":
            for alias in node.names:
                if alias.name in BANNED_FROM_IMPORTS:
                    self.add(
                        DET001,
                        node,
                        f"import of os.{alias.name}: OS entropy is "
                        "invisible to seeded replay",
                    )
                    self._name_aliases[alias.asname or alias.name] = (
                        f"os.{alias.name}"
                    )
        self.generic_visit(node)

    # -- calls --------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        chain = attribute_chain(node.func)
        if chain is not None:
            self._check_call_chain(node, chain)
        self._check_arbitrary_element(node)
        self.generic_visit(node)

    def _check_call_chain(self, node: ast.Call, chain: List[str]) -> None:
        root = chain[0]
        if len(chain) >= 2 and root == "os" and chain[1] in BANNED_FROM_IMPORTS:
            self.add(
                DET002,
                node,
                f"call to {'.'.join(chain)}: OS entropy is invisible to "
                "seeded replay",
            )
        elif root in self._module_aliases:
            self.add(
                DET002,
                node,
                f"call into banned module "
                f"{self._module_aliases[root]!r}: "
                f"{BANNED_MODULES[self._module_aliases[root]]}",
            )
        elif len(chain) == 1 and root in self._name_aliases:
            self.add(
                DET002,
                node,
                f"call to {self._name_aliases[root]} (imported as "
                f"{root!r})",
            )
        elif len(chain) >= 3 and root in ("np", "numpy") and chain[1] == "random":
            self.add(
                DET003,
                node,
                f"{'.'.join(chain)}(...) uses numpy's global/unmanaged "
                "randomness; use repro.runtime.rng.make_rng/derive_rng",
            )

    def _check_arbitrary_element(self, node: ast.Call) -> None:
        # next(iter(x)) — an arbitrary element of any unordered thing.
        if (
            isinstance(node.func, ast.Name)
            and node.func.id == "next"
            and node.args
            and isinstance(node.args[0], ast.Call)
            and isinstance(node.args[0].func, ast.Name)
            and node.args[0].func.id == "iter"
        ):
            self.add(
                DET005,
                node,
                "next(iter(...)) extracts a hash-order-dependent element; "
                "unpack (x,) = s or sort first",
            )
        # s.pop() with no argument on a set-annotated attribute.
        if (
            not node.args
            and not node.keywords
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "pop"
            and self._is_set_attr(node.func.value)
        ):
            self.add(
                DET005,
                node,
                "set.pop() removes a hash-order-dependent element",
            )

    # -- set iteration ------------------------------------------------------

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        attrs: Set[str] = set()
        for child in ast.walk(node):
            if (
                isinstance(child, ast.AnnAssign)
                and isinstance(child.target, ast.Attribute)
                and isinstance(child.target.value, ast.Name)
                and child.target.value.id == "self"
                and annotation_names_set(child.annotation)
            ):
                attrs.add(child.target.attr)
        self._set_attrs.append(attrs)
        try:
            super().visit_ClassDef(node)
        finally:
            self._set_attrs.pop()

    def _is_set_attr(self, node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and any(node.attr in attrs for attrs in self._set_attrs)
        )

    def _is_unordered_iterable(self, node: ast.AST) -> Optional[str]:
        if isinstance(node, (ast.Set, ast.SetComp)):
            return "a set literal"
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Name):
            if node.func.id in ("set", "frozenset"):
                return f"{node.func.id}(...)"
        if self._is_set_attr(node):
            return f"self.{node.attr} (annotated as a set)"  # type: ignore[attr-defined]
        return None

    def _check_iteration(self, iterable: ast.AST, node: ast.AST) -> None:
        what = self._is_unordered_iterable(iterable)
        if what is not None:
            self.add(
                DET004,
                node,
                f"iteration over {what}: order depends on PYTHONHASHSEED; "
                "wrap in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node.iter, node)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:  # type: ignore[attr-defined]
            self._check_iteration(comp.iter, comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


def run_determinism_pass(source: str, path: str) -> List[Finding]:
    """Lint one protocol-package file; returns its findings."""
    visitor = _DeterminismVisitor(path)
    visitor.visit(ast.parse(source, filename=path))
    return visitor.findings
