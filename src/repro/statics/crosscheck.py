"""Static-vs-dynamic closedness cross-check over the fuzz corpus.

Protoflow certifies each protocol *text* communication-closed (the
FLOW verdicts committed in ``tools/protoflow_certificates.json``);
the causal tracer certifies a particular *execution* closed
(:func:`repro.obs.trace.check_closedness`).  This module connects the
two: it replays every saved corpus case under a tracing observer and
demands the dynamic verdict agree with the static one.

The agreement rule is one-sided, because static analysis is the
conservative side:

- static ``closed`` (or ``waived`` — a human accepted the protocol's
  round discipline) ⇒ the observed execution **must** be closed; any
  dynamic problem is a disagreement, and the corpus test treats it as
  a failure, not a warning;
- static ``open`` ⇒ unconstrained: a conservative analysis may reject
  text whose executions happen to be closed.

Lives in ``statics/`` (outside the protolint-scanned protocol
packages) because it drives live replays — it is a checker *harness*,
not protocol code.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple, Union

#: Fuzz protocol name -> the certificate keys its execution exercises
#: (``tools/protoflow_certificates.json`` ``protocols`` keys).  A
#: protocol built from another protocol (weak agreement wraps phase
#: king) lists every process class the replay actually runs.
PROTOCOL_CERTIFICATES: Dict[str, Tuple[str, ...]] = {
    "avalanche": ("repro/avalanche/protocol.py::AvalancheProcess",),
    "compact-ba": ("repro/compact/protocol.py::CompactProcess",),
    "eig": (
        "repro/agreement/eig_agreement.py::ExponentialAgreementAutomaton",
    ),
    "crusader": ("repro/agreement/crusader.py::CrusaderProcess",),
    "weak": (
        "repro/agreement/weak.py::WeakAgreementProcess",
        "repro/agreement/phase_king.py::PhaseKingProcess",
    ),
    "firing-squad": ("repro/agreement/firing_squad.py::FiringSquadProcess",),
}

#: Default location of the committed certificate catalog.
DEFAULT_CERTIFICATES = pathlib.Path("tools/protoflow_certificates.json")


def load_certificates(
    path: Union[str, pathlib.Path] = DEFAULT_CERTIFICATES,
) -> Dict[str, Any]:
    """The ``protocols`` table of the committed certificate catalog."""
    data = json.loads(pathlib.Path(path).read_text())
    protocols = data.get("protocols")
    if not isinstance(protocols, dict):
        raise ValueError(f"{path}: no 'protocols' table")
    return protocols


def _static_verdicts(
    protocol: str, certificates: Dict[str, Any]
) -> Dict[str, str]:
    """Certificate-key -> FLOW verdict for one fuzz protocol."""
    verdicts: Dict[str, str] = {}
    for key in PROTOCOL_CERTIFICATES.get(protocol, ()):
        entry = certificates.get(key)
        flow = entry.get("flow") if isinstance(entry, dict) else None
        if isinstance(flow, dict):
            verdicts[key] = str(flow.get("verdict", "missing"))
        else:
            verdicts[key] = "missing"
    return verdicts


def check_case(
    case: Any,
    certificates: Dict[str, Any],
    scheduler: Optional[str] = None,
) -> Dict[str, Any]:
    """Replay one corpus case under a tracing observer and cross-check.

    Returns a JSON-ready verdict entry; ``agrees`` is ``False`` only
    when the static certificate promises closedness (``closed`` or
    ``waived``) and the observed execution violates it.  ``scheduler``
    selects the round-engine backend for the replay: a certified-
    closed protocol's trace must pass the dynamic checker under every
    backend, async delivery order included (docs/runtime.md).
    """
    import repro.obs.core as _obs
    from repro.fuzz.campaign import replay_case
    from repro.obs.events import EventLog
    from repro.obs.trace import build_dags, check_closedness

    log = EventLog()
    with _obs.observing(
        _obs.Observer(events=log, trace=True, spans=False)
    ):
        outcome = replay_case(case, scheduler=scheduler)
    problems = check_closedness(log.records)
    dags = build_dags(log.records)
    dynamic = "closed" if not problems else "open"
    statics = _static_verdicts(case.protocol, certificates)
    promised = [
        key for key, verdict in statics.items()
        if verdict in ("closed", "waived")
    ]
    agrees = not (promised and problems)
    deliver_edges = sum(len(dag.deliver_edges()) for dag in dags)
    traced_bits = sum(
        sum(dag.round_bits().values()) for dag in dags
    )
    return {
        "case": case.filename(),
        "protocol": case.protocol,
        "static": statics,
        "dynamic": dynamic,
        "problems": problems,
        "agrees": agrees,
        "deliver_edges": deliver_edges,
        "traced_bits": traced_bits,
        "replay_violations": list(outcome.violations),
    }


def cross_check_corpus(
    corpus_dir: Union[str, pathlib.Path],
    certificates_path: Union[str, pathlib.Path] = DEFAULT_CERTIFICATES,
) -> Dict[str, Any]:
    """Cross-check every case in a corpus directory.

    ``ok`` is ``True`` only when every case agrees — the acceptance
    gate CI and ``tests/statics/test_dynamic_crosscheck.py`` enforce.
    """
    from repro.fuzz.case import load_corpus

    certificates = load_certificates(certificates_path)
    cases: List[Dict[str, Any]] = []
    for _path, case in load_corpus(pathlib.Path(corpus_dir)):
        cases.append(check_case(case, certificates))
    disagreements = [entry for entry in cases if not entry["agrees"]]
    return {
        "corpus": str(corpus_dir),
        "certificates": str(certificates_path),
        "cases": cases,
        "disagreements": [entry["case"] for entry in disagreements],
        "ok": not disagreements,
    }


def render_cross_check(report: Dict[str, Any]) -> str:
    """Human-readable form of :func:`cross_check_corpus`."""
    lines = [
        f"closedness cross-check — corpus {report['corpus']} vs "
        f"{report['certificates']}"
    ]
    for entry in report["cases"]:
        statics = ", ".join(
            f"{key.rsplit('::', 1)[-1]}={verdict}"
            for key, verdict in entry["static"].items()
        )
        lines.append(
            f"  {entry['case']}: dynamic {entry['dynamic']} "
            f"({entry['deliver_edges']} edges, "
            f"{entry['traced_bits']} bits) vs static [{statics}] — "
            + ("agrees" if entry["agrees"] else "DISAGREES")
        )
        for problem in entry["problems"]:
            lines.append(f"    {problem}")
    lines.append(
        f"{len(report['cases'])} case(s), "
        f"{len(report['disagreements'])} disagreement(s)"
    )
    return "\n".join(lines)


__all__ = [
    "DEFAULT_CERTIFICATES",
    "PROTOCOL_CERTIFICATES",
    "check_case",
    "cross_check_corpus",
    "load_certificates",
    "render_cross_check",
]
