"""The message-size interpreter (COM rule family).

Infers a symbolic per-round bit bound for every certified protocol's
payload by abstract interpretation over :class:`~.lattice.SizeVal`:

* ``constant`` — O(1) in n and in the round number;
* ``linear`` — O(n) per round: one entry per processor, or a buffer
  that the send path drains every round;
* ``history`` — grows with the execution: an attribute that only ever
  accumulates across ``receive`` calls, or one rebuilt from a value
  derived from itself (the full-information recursion
  ``state_r = (state_{r-1}, messages_r)``, recognized *through* local
  variables via the dependency component of ``SizeVal``).

The inferred bound is cross-checked against the module's
``MESSAGE_BOUNDS`` declaration by the COM pass (see ``passes.py``);
the canonical-form claim of the paper is exactly that every protocol
admits a non-``history`` bound after the Theorem 5 transform, so a
``history`` inference without a justified declaration is the linter
telling you to route the protocol through ``repro.compact``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.statics.flow.lattice import Size, SizeVal, join_sizes
from repro.statics.flow.model import ClassInfo, ProjectIndex

_MAX_DEPTH = 10

#: Container methods that accumulate into their receiver.
_ACCUMULATORS = frozenset(
    {"append", "add", "extend", "insert", "update", "setdefault", "learn"}
)

#: Methods returning (a view of) their receiver unchanged in size.
_VIEWS = frozenset({"items", "values", "keys", "copy", "get"})


def _chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _is_empty_literal(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Tuple, ast.Set)) and not node.elts:
        return True
    if isinstance(node, ast.Dict) and not node.keys:
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("list", "tuple", "dict", "set", "frozenset")
        and not node.args
    ):
        return True
    return False


@dataclasses.dataclass
class SizeSummary:
    """The size analysis of one certified class."""

    inferred: Size
    accumulating: Set[str]
    self_referential: Set[str]
    drained: Set[str]


class SizeAnalyzer:
    """Shared across classes; holds the project index."""

    def __init__(self, index: ProjectIndex):
        self.index = index

    # -- public --------------------------------------------------------------

    def analyze_process(self, info: ClassInfo) -> SizeSummary:
        """Infer the per-round payload bound of a ``Process`` subclass."""
        bindings = static_bindings(self.index, info)
        state = _ClassSizeState(self.index, info, bindings)
        state.scan_drains("outgoing")
        state.run_receive_path(("receive",))
        payload = state.eval_payload("outgoing")
        return SizeSummary(
            inferred=payload,
            accumulating=state.accumulating,
            self_referential=state.self_referential,
            drained=state.drained,
        )

    def analyze_automaton(self, info: ClassInfo) -> SizeSummary:
        """Infer the bound of an ``AutomatonProtocol``'s message map.

        The Section 3.1 automaton threads its state through the message
        tuple: ``delta_p`` maps the n-tuple of round-r messages to the
        next state, and ``mu_pq`` maps that state to round-(r+1)
        messages.  The full-information recursion is therefore a
        transition whose result *retains* the message tuple (size >=
        linear, derived from ``messages``) feeding a ``message`` that
        embeds the state — each round nests the previous n-tuple, so
        the bound is ``history``.
        """
        bindings = static_bindings(self.index, info)
        state = _ClassSizeState(self.index, info, bindings)
        messages = SizeVal(Size.LINEAR, frozenset({"<messages>"}))
        produced = state.eval_method_return(
            "transition", {"messages": messages}
        )
        nests = (
            produced.size >= Size.LINEAR and "<messages>" in produced.deps
        )
        state_size = SizeVal(
            Size.HISTORY if nests else produced.size,
            frozenset({"<state>"}),
        )
        payload = state.eval_method_return("message", {"state": state_size})
        inferred = payload.size
        if "<state>" in payload.deps:
            inferred = max(inferred, state_size.size)
        return SizeSummary(
            inferred=inferred,
            accumulating=state.accumulating,
            self_referential=({"<state>"} if nests else set()),
            drained=set(),
        )


def static_bindings(
    index: ProjectIndex, info: ClassInfo
) -> Dict[str, ClassInfo]:
    """``self.attr -> ClassInfo`` bindings made anywhere in the class.

    Covers plain assignment, subscript assignment, and dict/list
    comprehensions whose element is a constructor call — the idioms the
    compact stack uses to bind per-subject helper instances.
    """
    bindings: Dict[str, ClassInfo] = {}
    for cls in index.mro(info):
        for method in cls.methods.values():
            for node in ast.walk(method):
                if not isinstance(node, ast.Assign):
                    continue
                calls: List[ast.Call] = []
                value = node.value
                if isinstance(value, ast.Call):
                    calls.append(value)
                elif isinstance(value, ast.DictComp) and isinstance(
                    value.value, ast.Call
                ):
                    calls.append(value.value)
                elif isinstance(value, ast.ListComp) and isinstance(
                    value.elt, ast.Call
                ):
                    calls.append(value.elt)
                if not calls:
                    continue
                constructed = index.resolve_class(cls.module, calls[0].func)
                if constructed is None:
                    continue
                terminal = (
                    calls[0].func.attr
                    if isinstance(calls[0].func, ast.Attribute)
                    else calls[0].func.id
                    if isinstance(calls[0].func, ast.Name)
                    else None
                )
                if terminal != constructed.name:
                    continue
                for target in node.targets:
                    attr_name = _self_target_attr(target)
                    if attr_name is not None:
                        bindings.setdefault(attr_name, constructed)
    return bindings


def _self_target_attr(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Subscript):
        target = target.value
    if (
        isinstance(target, ast.Attribute)
        and isinstance(target.value, ast.Name)
        and target.value.id == "self"
    ):
        return target.attr
    return None


class _ClassSizeState:
    """Mutable per-class analysis state for the size interpreter."""

    def __init__(
        self,
        index: ProjectIndex,
        info: ClassInfo,
        bindings: Dict[str, ClassInfo],
    ):
        self.index = index
        self.info = info
        self.bindings = bindings
        self.attr_sizes: Dict[str, Size] = {}
        self.accumulating: Set[str] = set()
        self.self_referential: Set[str] = set()
        self.drained: Set[str] = set()
        self._in_progress: Set[str] = set()

    # -- attribute resolution ------------------------------------------------

    def attr_size(self, name: str) -> SizeVal:
        if name in self.self_referential:
            return SizeVal(Size.HISTORY, frozenset({name}))
        base = self.attr_sizes.get(name, Size.CONSTANT)
        if name in self.accumulating:
            if name in self.drained:
                base = max(base, Size.LINEAR)
            else:
                base = Size.HISTORY
        return SizeVal(base, frozenset({name}))

    # -- drains (send path, structural) --------------------------------------

    def scan_drains(self, entry: str) -> None:
        for _, _, method in self._reachable(entry):
            for node in ast.walk(method):
                if isinstance(node, ast.Assign):
                    # Tuple swap: ``items, self._x = self._x, []``.
                    for target in node.targets:
                        if isinstance(target, ast.Tuple) and isinstance(
                            node.value, ast.Tuple
                        ):
                            for element, rhs in zip(
                                target.elts, node.value.elts
                            ):
                                name = _self_target_attr(element)
                                if name is not None and _is_empty_literal(
                                    rhs
                                ):
                                    self.drained.add(name)
                        else:
                            name = _self_target_attr(target)
                            if name is not None and _is_empty_literal(
                                node.value
                            ):
                                self.drained.add(name)

    def _reachable(
        self, entry: str
    ) -> List[Tuple[ClassInfo, str, ast.FunctionDef]]:
        return reachable_methods(self.index, self.info, self.bindings, entry)

    # -- receive-path interpretation -----------------------------------------

    def run_receive_path(self, entries: Sequence[str]) -> None:
        for _ in range(3):
            before = (
                dict(self.attr_sizes),
                set(self.accumulating),
                set(self.self_referential),
            )
            for entry in entries:
                found = self.index.find_method(self.info, entry)
                if found is None:
                    continue
                owner, method = found
                env = self._param_env(method)
                self._exec_block(method.body, env, owner, 0, per_n=False)
            after = (
                dict(self.attr_sizes),
                set(self.accumulating),
                set(self.self_referential),
            )
            if before == after:
                break

    def _param_env(self, method: ast.FunctionDef) -> Dict[str, SizeVal]:
        env: Dict[str, SizeVal] = {}
        for arg in method.args.args:
            if arg.arg != "self":
                env[arg.arg] = SizeVal()
        return env

    # -- payload evaluation ---------------------------------------------------

    def eval_payload(self, entry: str) -> Size:
        value = self.eval_method_return(entry, {})
        size = value.size
        for dep in value.deps:
            size = max(size, self.attr_size(dep).size)
        return size

    def eval_method_return(
        self, name: str, param_overrides: Dict[str, SizeVal]
    ) -> SizeVal:
        found = self.index.find_method(self.info, name)
        if found is None:
            return SizeVal()
        owner, method = found
        env = self._param_env(method)
        env.update(param_overrides)
        return self._exec_for_return(method, env, owner, 0)

    def _exec_for_return(
        self,
        method: ast.FunctionDef,
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
    ) -> SizeVal:
        returns: List[SizeVal] = []
        self._exec_block(
            method.body, env, owner, depth, per_n=False, returns=returns
        )
        return join_sizes(returns) if returns else SizeVal()

    # -- statement walk -------------------------------------------------------

    def _exec_block(
        self,
        body: Sequence[ast.stmt],
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
        per_n: bool,
        returns: Optional[List[SizeVal]] = None,
    ) -> None:
        for stmt in body:
            self._exec(stmt, env, owner, depth, per_n, returns)

    def _exec(
        self,
        stmt: ast.stmt,
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
        per_n: bool,
        returns: Optional[List[SizeVal]],
    ) -> None:
        if isinstance(stmt, ast.Assign):
            value = self._eval(stmt.value, env, owner, depth)
            for target in stmt.targets:
                self._store(target, value, env, per_n)
        elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
            self._store(
                stmt.target,
                self._eval(stmt.value, env, owner, depth),
                env,
                per_n,
            )
        elif isinstance(stmt, ast.AugAssign):
            value = self._eval(stmt.value, env, owner, depth)
            name = _self_target_attr(stmt.target)
            if name is not None:
                self.accumulating.add(name)
                if name in value.deps and value.size >= Size.LINEAR:
                    self.self_referential.add(name)
            elif isinstance(stmt.target, ast.Name):
                previous = env.get(stmt.target.id, SizeVal())
                env[stmt.target.id] = join_sizes([previous, value])
        elif isinstance(stmt, ast.Return):
            if returns is not None and stmt.value is not None:
                returns.append(self._eval(stmt.value, env, owner, depth))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, env, owner, depth, per_n=per_n)
        elif isinstance(stmt, ast.If):
            self._eval(stmt.test, env, owner, depth)
            self._exec_block(stmt.body, env, owner, depth, per_n, returns)
            self._exec_block(stmt.orelse, env, owner, depth, per_n, returns)
        elif isinstance(stmt, ast.For):
            iterable = self._eval(stmt.iter, env, owner, depth)
            loop_per_n = per_n or self._is_per_n(stmt.iter, env)
            if isinstance(stmt.target, ast.Name):
                env[stmt.target.id] = SizeVal(Size.CONSTANT, iterable.deps)
            elif isinstance(stmt.target, (ast.Tuple, ast.List)):
                for element in stmt.target.elts:
                    if isinstance(element, ast.Name):
                        env[element.id] = SizeVal(
                            Size.CONSTANT, iterable.deps
                        )
            for _ in range(2):
                self._exec_block(
                    stmt.body, env, owner, depth, loop_per_n, returns
                )
        elif isinstance(stmt, ast.While):
            for _ in range(2):
                self._exec_block(stmt.body, env, owner, depth, per_n, returns)
        elif isinstance(stmt, (ast.With, ast.Try)):
            inner: List[ast.stmt] = list(getattr(stmt, "body", []))
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    inner.extend(handler.body)
                inner.extend(stmt.finalbody)
                inner.extend(stmt.orelse)
            self._exec_block(inner, env, owner, depth, per_n, returns)

    def _store(
        self,
        target: ast.expr,
        value: SizeVal,
        env: Dict[str, SizeVal],
        per_n: bool,
    ) -> None:
        if isinstance(target, ast.Name):
            env[target.id] = value
            return
        name = _self_target_attr(target)
        if name is None:
            if isinstance(target, (ast.Tuple, ast.List)):
                for element in target.elts:
                    self._store(element, value, env, per_n)
            elif isinstance(target, ast.Subscript) and isinstance(
                target.value, ast.Name
            ):
                container = env.get(target.value.id, SizeVal())
                grown = join_sizes([container, value])
                if per_n:
                    grown = grown.widen(Size.LINEAR)
                env[target.value.id] = grown
            return
        if isinstance(target, ast.Subscript):
            # ``self.x[key] = v`` accumulates into the attribute.
            self.accumulating.add(name)
            if name in value.deps and value.size >= Size.LINEAR:
                self.self_referential.add(name)
            return
        # Self-reference is growth only when the stored value is itself
        # a collection carrying the attribute (full-information
        # nesting); ``self.value = f(..., self.value, ...)`` over
        # scalars is a plain update.
        if name in value.deps and value.size >= Size.LINEAR:
            self.self_referential.add(name)
        self.attr_sizes[name] = max(
            self.attr_sizes.get(name, Size.CONSTANT), value.size
        )

    def _is_per_n(
        self, iterable: ast.expr, env: Dict[str, SizeVal]
    ) -> bool:
        chain = _chain(iterable)
        if chain is None and isinstance(iterable, ast.Call):
            chain = _chain(iterable.func)
        if chain is None:
            value = self._size_of_chainless(iterable, env)
            return value.size >= Size.LINEAR
        if "process_ids" in chain:
            return True
        root = chain[0]
        if root == "self":
            return any(
                part in self.accumulating or part in self.self_referential
                for part in chain[1:]
            )
        if root in env:
            return env[root].size >= Size.LINEAR
        return False

    def _size_of_chainless(
        self, iterable: ast.expr, env: Dict[str, SizeVal]
    ) -> SizeVal:
        if isinstance(iterable, ast.Call):
            return SizeVal()
        return SizeVal()

    # -- expression evaluation ------------------------------------------------

    def _eval(
        self,
        node: ast.expr,
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
        per_n: bool = False,
    ) -> SizeVal:
        if isinstance(node, ast.Constant):
            return SizeVal()
        if isinstance(node, ast.Name):
            return env.get(node.id, SizeVal())
        if isinstance(node, ast.Attribute):
            chain = _chain(node)
            if chain is not None and chain[0] == "self" and len(chain) >= 2:
                if chain[1] == "config":
                    if chain[-1] == "process_ids":
                        return SizeVal(Size.LINEAR, frozenset())
                    return SizeVal()
                return self.attr_size(chain[1])
            if chain is not None and chain[0] in env:
                return env[chain[0]]
            return SizeVal()
        if isinstance(node, ast.Call):
            return self._eval_call(node, env, owner, depth, per_n)
        if isinstance(node, ast.Subscript):
            container = self._eval(node.value, env, owner, depth)
            return SizeVal(Size.CONSTANT, container.deps)
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return join_sizes(
                self._eval(item, env, owner, depth) for item in node.elts
            )
        if isinstance(node, ast.Dict):
            parts = [
                self._eval(value, env, owner, depth)
                for value in node.values
            ]
            parts.extend(
                self._eval(key, env, owner, depth)
                for key in node.keys
                if key is not None
            )
            return join_sizes(parts)
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(node, env, owner, depth)
        if isinstance(node, ast.IfExp):
            return join_sizes(
                [
                    self._eval(node.body, env, owner, depth),
                    self._eval(node.orelse, env, owner, depth),
                ]
            )
        if isinstance(node, (ast.BinOp, ast.BoolOp)):
            parts = [
                self._eval(child, env, owner, depth)
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            ]
            return join_sizes(parts)
        if isinstance(node, (ast.Compare, ast.UnaryOp, ast.Lambda)):
            return SizeVal()
        if isinstance(node, ast.Starred):
            return self._eval(node.value, env, owner, depth)
        parts = [
            self._eval(child, env, owner, depth)
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return join_sizes(parts)

    def _eval_comprehension(
        self,
        node: ast.expr,
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
    ) -> SizeVal:
        inner = dict(env)
        per_n = False
        for comp in node.generators:  # type: ignore[attr-defined]
            iterable = self._eval(comp.iter, inner, owner, depth)
            per_n = per_n or self._is_per_n(comp.iter, inner)
            targets = (
                comp.target.elts
                if isinstance(comp.target, (ast.Tuple, ast.List))
                else [comp.target]
            )
            for target in targets:
                if isinstance(target, ast.Name):
                    inner[target.id] = SizeVal(
                        Size.CONSTANT, iterable.deps
                    )
        if isinstance(node, ast.DictComp):
            # A recipient map ``{q: payload(q) for q in process_ids}``
            # is the outgoing shape itself: the per-round bound is the
            # per-recipient payload, not n times it.
            if (
                per_n
                and isinstance(node.key, ast.Name)
                and any(
                    isinstance(comp.target, ast.Name)
                    and comp.target.id == node.key.id
                    for comp in node.generators
                )
            ):
                return self._eval(node.value, inner, owner, depth)
            element = join_sizes(
                [
                    self._eval(node.key, inner, owner, depth),
                    self._eval(node.value, inner, owner, depth),
                ]
            )
        else:
            element = self._eval(
                node.elt, inner, owner, depth  # type: ignore[attr-defined]
            )
        return element.widen(Size.LINEAR) if per_n else element

    def _eval_call(
        self,
        node: ast.Call,
        env: Dict[str, SizeVal],
        owner: ClassInfo,
        depth: int,
        per_n: bool,
    ) -> SizeVal:
        args = [self._eval(arg, env, owner, depth) for arg in node.args]
        args.extend(
            self._eval(keyword.value, env, owner, depth)
            for keyword in node.keywords
        )
        joined = join_sizes(args)
        chain = _chain(node.func)
        terminal = chain[-1] if chain else None

        if terminal in ("len", "isinstance", "range", "min", "max", "sum"):
            return SizeVal()
        if terminal == "broadcast" and args:
            return args[0]
        if terminal in ("tuple", "list", "sorted", "dict", "set", "frozenset"):
            return joined
        if chain is not None and chain[0] == "self":
            # Mutator on an attribute: cross-round accumulation.
            if len(chain) >= 3 and terminal in _ACCUMULATORS:
                attr = chain[1]
                self.accumulating.add(attr)
                if any(
                    attr in arg.deps and arg.size >= Size.LINEAR
                    for arg in args
                ):
                    self.self_referential.add(attr)
                return SizeVal()
            if len(chain) == 2 and terminal is not None:
                return self._call_method(
                    self.info, terminal, args, env, depth
                )
            if len(chain) >= 3 and chain[1] in self.bindings:
                helper = self.bindings[chain[1]]
                if terminal in _VIEWS:
                    return joined
                if terminal is not None:
                    return self._call_method(helper, terminal, args, env, depth)
            if terminal in _VIEWS and len(chain) >= 3:
                return self.attr_size(chain[1])
            return joined
        if chain is not None and chain[0] in env:
            receiver = env[chain[0]]
            if terminal in _ACCUMULATORS:
                grown = join_sizes([receiver, joined])
                if per_n:
                    grown = grown.widen(Size.LINEAR)
                env[chain[0]] = grown
                return SizeVal()
            if terminal in _VIEWS:
                return receiver
            return join_sizes([receiver, joined])
        if (
            chain is not None
            and len(chain) == 1
            and terminal in owner.module.functions
        ):
            return self._call_function(
                owner, owner.module.functions[terminal], args, depth
            )
        return joined

    def _call_method(
        self,
        target_class: ClassInfo,
        name: str,
        args: List[SizeVal],
        env: Dict[str, SizeVal],
        depth: int,
    ) -> SizeVal:
        key = f"{target_class.qualname}.{name}"
        if depth > _MAX_DEPTH or key in self._in_progress:
            return join_sizes(args)
        found = self.index.find_method(target_class, name)
        if found is None:
            return join_sizes(args)
        owner, method = found
        call_env: Dict[str, SizeVal] = {}
        params = [arg.arg for arg in method.args.args]
        if params and params[0] == "self":
            params = params[1:]
        for position, param in enumerate(params):
            call_env[param] = (
                args[position] if position < len(args) else SizeVal()
            )
        self._in_progress.add(key)
        try:
            return self._exec_for_return(method, call_env, owner, depth + 1)
        finally:
            self._in_progress.discard(key)

    def _call_function(
        self,
        owner: ClassInfo,
        function: ast.FunctionDef,
        args: List[SizeVal],
        depth: int,
    ) -> SizeVal:
        key = f"{owner.module.qualname}.{function.name}"
        if depth > _MAX_DEPTH or key in self._in_progress:
            return join_sizes(args)
        call_env: Dict[str, SizeVal] = {}
        for position, arg in enumerate(function.args.args):
            call_env[arg.arg] = (
                args[position] if position < len(args) else SizeVal()
            )
        self._in_progress.add(key)
        try:
            return self._exec_for_return(function, call_env, owner, depth + 1)
        finally:
            self._in_progress.discard(key)


def reachable_methods(
    index: ProjectIndex,
    info: ClassInfo,
    bindings: Dict[str, ClassInfo],
    entry: str,
) -> List[Tuple[ClassInfo, str, ast.FunctionDef]]:
    """Methods reachable from ``info.entry`` through self/helper calls.

    Follows ``self.method(...)`` within the class (and its indexed
    ancestors) and ``self.attr.method(...)`` into helper classes bound
    in ``__init__`` — the call graph the send/receive path analyses
    walk.  Bounded by visited-set, so cycles terminate.
    """
    out: List[Tuple[ClassInfo, str, ast.FunctionDef]] = []
    seen: Set[Tuple[str, str]] = set()
    frontier: List[Tuple[ClassInfo, Dict[str, ClassInfo], str]] = [
        (info, bindings, entry)
    ]
    while frontier:
        cls, cls_bindings, name = frontier.pop(0)
        key = (cls.qualname, name)
        if key in seen:
            continue
        seen.add(key)
        found = index.find_method(cls, name)
        if found is None:
            continue
        owner, method = found
        out.append((owner, name, method))
        for node in ast.walk(method):
            if not isinstance(node, ast.Call):
                continue
            chain = _chain(node.func)
            if chain is None or chain[0] != "self":
                continue
            if len(chain) == 2:
                frontier.append((cls, cls_bindings, chain[1]))
            elif len(chain) >= 3 and chain[1] in cls_bindings:
                helper = cls_bindings[chain[1]]
                frontier.append(
                    (helper, static_bindings(index, helper), chain[-1])
                )
    return out
