"""protoflow: interprocedural dataflow certification of canonical form.

The paper's canonical-form theorem is a claim about program *text*:
every protocol can be rewritten so its rounds are communication-closed
and its messages are small.  The passes in this subpackage check those
properties statically, per protocol class, and emit a machine-readable
certificate for each one:

* **FLOW** — communication-closedness: values received in round *r*
  only reach sends in rounds >= *r*, the send phase is a pure function
  of the pre-round state, and no raw per-round message map is squirreled
  away for later rounds.
* **COM** — message-size bounds: an abstract interpretation of each
  payload constructor infers a symbolic per-round bound (constant /
  linear / history) and cross-checks it against the module's declared
  ``MESSAGE_BOUNDS``.
* **TAINT** — Byzantine influence: every value originating from
  ``receive()`` is adversary-controllable and must pass a recognized
  sanitizer before reaching a decision or an outgoing payload.

See ``docs/statics.md`` for the rule tables and the certificate
format consumed by the planned asynchronous backend.
"""

from __future__ import annotations

from repro.statics.flow.certificates import certify_tree
from repro.statics.flow.passes import FlowAnalysis, analyze_tree, run_flow_pass

__all__ = [
    "FlowAnalysis",
    "analyze_tree",
    "certify_tree",
    "run_flow_pass",
]
