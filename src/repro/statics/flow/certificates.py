"""Per-protocol canonical-form certificates.

The closedness certificate is the artifact ROADMAP item 1 needs: the
asynchrony reduction (Damian/Dragoi/Widder, see PAPERS.md) applies
exactly to protocols whose rounds are communication-closed, and the
Alpturer-Ruj limited-information-exchange bounds need the per-round
size class.  ``certify_tree`` re-runs the protoflow analyses and folds
in the lint baseline: a violation with a justified suppression leaves
the protocol ``waived`` (deliberately non-canonical in a documented
way), an unsuppressed violation leaves it ``open``.

Certificate schema (version 1)::

    {
      "version": 1,
      "protocols": {
        "repro/agreement/phase_king.py::PhaseKingProcess": {
          "kind": "process",
          "structure": "lockstep",
          "flow":  {"verdict": "closed", "violations": [], "waived": []},
          "size":  {"inferred": "constant", "declared": "constant",
                     "justified": false, "verdict": "bounded"},
          "taint": {"verdict": "sanitized", "violations": [],
                     "waived": [], "sanitizers": ["_as_bit"]}
        }, ...
      }
    }

``flow.verdict`` is ``closed`` | ``waived`` | ``open``;
``taint.verdict`` is ``sanitized`` | ``waived`` | ``open``;
``size.verdict`` is ``bounded`` (declared >= inferred), ``declared``
(justified declaration below the inference), or ``history``.
Violation keys are finding suppression keys (``rule:path:symbol``),
so the certificate is stable across unrelated edits.

The shipped catalog's certificates are committed at
``tools/protoflow_certificates.json`` and pinned by
``tests/statics/test_certificates.py``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, List, Optional, Tuple

from repro.statics.baseline import Baseline
from repro.statics.findings import Finding
from repro.statics.flow.lattice import SIZE_NAMES, size_name
from repro.statics.flow.passes import ProtocolReport, analyze_tree

CERTIFICATE_VERSION = 1


def _split(
    findings: List[Finding], baseline: Baseline
) -> Tuple[List[str], List[str]]:
    """(open violation keys, waived violation keys), each sorted+deduped."""
    violations = set()
    waived = set()
    for finding in findings:
        if baseline.match(finding) is not None:
            waived.add(finding.suppression_key)
        else:
            violations.add(finding.suppression_key)
    return sorted(violations), sorted(waived)


def _verdict(violations: List[str], waived: List[str], ok: str) -> str:
    if violations:
        return "open"
    if waived:
        return "waived"
    return ok


def certificate_for(
    report: ProtocolReport, baseline: Baseline
) -> Dict[str, Any]:
    """The certificate entry for one protocol report."""
    flow_open, flow_waived = _split(report.flow_findings, baseline)
    taint_open, taint_waived = _split(report.taint_findings, baseline)
    com_open, com_waived = _split(report.com_findings, baseline)

    declared = report.declared
    declared_name: Optional[str] = (
        declared.bound if declared is not None else None
    )
    justified = bool(declared is not None and declared.justification)
    if com_open or declared_name is None or declared_name not in SIZE_NAMES:
        size_verdict = "open"
    elif declared_name == "history":
        size_verdict = "history"
    elif SIZE_NAMES[declared_name] >= report.inferred_bound:
        size_verdict = "bounded"
    else:
        size_verdict = "declared"

    return {
        "kind": report.kind,
        "structure": report.structure,
        "flow": {
            "verdict": _verdict(flow_open, flow_waived, "closed"),
            "violations": flow_open,
            "waived": flow_waived,
        },
        "size": {
            "inferred": size_name(report.inferred_bound),
            "declared": declared_name,
            "justified": justified,
            "verdict": size_verdict,
            "violations": com_open,
            "waived": com_waived,
        },
        "taint": {
            "verdict": _verdict(taint_open, taint_waived, "sanitized"),
            "violations": taint_open,
            "waived": taint_waived,
            "sanitizers": report.sanitizers_used,
        },
    }


def certify_tree(
    package_root: pathlib.Path, baseline: Optional[Baseline] = None
) -> Dict[str, Any]:
    """Certificates for every certified protocol under ``package_root``."""
    baseline = baseline if baseline is not None else Baseline()
    analysis = analyze_tree(package_root)
    protocols: Dict[str, Any] = {}
    for report in analysis.reports:
        key = f"{report.cls.module.relative}::{report.cls.name}"
        protocols[key] = certificate_for(report, baseline)
    return {"version": CERTIFICATE_VERSION, "protocols": protocols}


def render_certificates(certificates: Dict[str, Any]) -> str:
    """Canonical JSON serialization (stable across runs)."""
    return json.dumps(certificates, indent=2, sort_keys=True) + "\n"


def is_certified_canonical(entry: Dict[str, Any]) -> bool:
    """Whether a certificate entry claims closed + sanitized + bounded.

    The static/dynamic agreement test uses this predicate: a fuzz
    counterexample against a protocol whose certificate passes it
    means either the oracle or protoflow is wrong — both ``closed``
    and ``waived`` count, because a waiver documents a deliberate,
    reviewed deviation, not an unknown one.
    """
    flow_ok = entry["flow"]["verdict"] in ("closed", "waived")
    taint_ok = entry["taint"]["verdict"] in ("sanitized", "waived")
    size_ok = entry["size"]["verdict"] != "open"
    return bool(flow_ok and taint_ok and size_ok)
