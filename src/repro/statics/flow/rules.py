"""Rule metadata for the three protoflow families (FLOW / COM / TAINT)."""

from __future__ import annotations

from repro.statics.rules import rule

FLOW001 = rule(
    "FLOW001",
    "flow",
    "raw message map captured into persistent state",
    "communication-closedness (Section 3.1): storing the whole round-r "
    "incoming map lets later rounds re-read round-r messages, so the "
    "round structure the canonical form relies on is violated",
)
FLOW002 = rule(
    "FLOW002",
    "flow",
    "send phase reads state with no provenance",
    "the canonical form makes round r's messages a function of the "
    "end-of-round-(r-1) state; an attribute never written by __init__ "
    "or any receive path has no such provenance",
)
FLOW003 = rule(
    "FLOW003",
    "flow",
    "send phase mutates processor state",
    "mu_pq is a pure function of the pre-round state (Section 3.1); a "
    "send path that writes state makes the message history depend on "
    "send ordering, which the Theorem 2 replay cannot reproduce",
)
COM001 = rule(
    "COM001",
    "com",
    "history-accumulating payload without a justified bound",
    "Theorem 5 exists precisely to avoid full-information message "
    "growth; a sender whose per-round bits grow with history should "
    "route through repro.compact or declare why not",
)
COM002 = rule(
    "COM002",
    "com",
    "declared bound below the inferred bound",
    "a MESSAGE_BOUNDS entry tighter than what abstract interpretation "
    "infers needs a justification (e.g. a depth cap the analysis "
    "cannot see), or the declared bound is wishful",
)
COM003 = rule(
    "COM003",
    "com",
    "missing or invalid MESSAGE_BOUNDS declaration",
    "every certified protocol must state its per-round bound so the "
    "certificate can compare declared against inferred; dead or "
    "malformed entries drift from the tree",
)
TAINT001 = rule(
    "TAINT001",
    "taint",
    "decision on an unsanitized adversarial value",
    "a Byzantine sender controls everything receive() delivers; a "
    "decision must only depend on values that passed a majority / "
    "threshold / legality filter (agreement validity fails otherwise)",
)
TAINT002 = rule(
    "TAINT002",
    "taint",
    "unsanitized adversarial value in an outgoing payload",
    "relaying raw received bytes lets one faulty processor speak with "
    "another's voice; payloads must carry only sanitized derivations "
    "of received values",
)
TAINT003 = rule(
    "TAINT003",
    "taint",
    "invalid TAINT_SANITIZERS declaration",
    "sanitizer declarations are trusted by the taint pass; an entry "
    "naming nothing in the module (or lacking a justification) would "
    "silently launder adversarial data",
)
