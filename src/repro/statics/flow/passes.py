"""Orchestration of the FLOW / COM / TAINT passes over a tree.

``analyze_tree`` builds the project index once, then produces one
:class:`ProtocolReport` per certified class (every concrete ``Process``
subclass and every ``AutomatonProtocol`` implementation in the flow
packages) plus the declaration-validation findings for each module.
``run_flow_pass`` flattens that into the finding list ``repro lint``
merges with the other passes; ``certificates.py`` consumes the same
reports to emit the per-protocol certificate file.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import Dict, List, Optional, Set

from repro.statics.findings import Finding
from repro.statics.flow.closedness import analyze_flow
from repro.statics.flow.engine import Instance, TaintInterpreter, TaintReport
from repro.statics.flow.lattice import SIZE_NAMES, Size, Taint, size_name
from repro.statics.flow.model import (
    BoundDecl,
    ClassInfo,
    ModuleInfo,
    ProjectIndex,
)
from repro.statics.flow.rules import COM001, COM002, COM003, TAINT002, TAINT003
from repro.statics.flow.sizes import SizeAnalyzer, SizeSummary

_FIXPOINT_LIMIT = 8


@dataclasses.dataclass
class ProtocolReport:
    """Everything the three passes concluded about one protocol class."""

    cls: ClassInfo
    kind: str
    structure: str
    flow_findings: List[Finding]
    taint_findings: List[Finding]
    com_findings: List[Finding]
    sanitizers_used: List[str]
    inferred_bound: Size
    declared: Optional[BoundDecl]

    @property
    def findings(self) -> List[Finding]:
        return sorted(
            self.flow_findings + self.taint_findings + self.com_findings
        )


@dataclasses.dataclass
class FlowAnalysis:
    """The whole-tree result: per-protocol reports + module findings."""

    reports: List[ProtocolReport]
    module_findings: List[Finding]

    @property
    def findings(self) -> List[Finding]:
        out = set(self.module_findings)
        # Deduped: an inherited method (e.g. an automaton subclassing
        # FullInformationAutomaton) reports at the ancestor's location
        # from every subclass's report.
        for report in self.reports:
            out.update(report.findings)
        return sorted(out)


def analyze_tree(package_root: pathlib.Path) -> FlowAnalysis:
    """Run protoflow over the tree rooted at ``package_root``."""
    index = ProjectIndex(package_root)
    certified = index.certified()
    certified_names: Dict[str, Set[str]] = {}
    for info in certified:
        certified_names.setdefault(info.module.relative, set()).add(
            info.name
        )
    sizes = SizeAnalyzer(index)
    reports = [
        _analyze_protocol(index, sizes, info) for info in certified
    ]
    module_findings: List[Finding] = []
    for module in index.linted:
        module_findings.extend(
            _validate_declarations(
                module, certified_names.get(module.relative, set())
            )
        )
    return FlowAnalysis(reports=reports, module_findings=module_findings)


def run_flow_pass(package_root: pathlib.Path) -> List[Finding]:
    """The finding list ``collect_findings`` merges with other passes."""
    return analyze_tree(package_root).findings


# -- per-protocol analysis ---------------------------------------------------


def _analyze_protocol(
    index: ProjectIndex, sizes: SizeAnalyzer, info: ClassInfo
) -> ProtocolReport:
    kind = index.kind_of(info)
    if kind == "process":
        flow = analyze_flow(index, info)
        flow_findings, structure = flow.findings, flow.structure
        taint = _taint_process(index, info)
        summary = sizes.analyze_process(info)
    else:
        flow_findings, structure = [], "automaton"
        taint = _taint_automaton(index, info)
        summary = sizes.analyze_automaton(info)
    declared = info.module.bounds.get(info.name)
    com_findings = _check_bounds(info, summary, declared)
    return ProtocolReport(
        cls=info,
        kind=kind,
        structure=structure,
        flow_findings=sorted(set(flow_findings)),
        taint_findings=sorted(set(taint.findings)),
        com_findings=sorted(set(com_findings)),
        sanitizers_used=sorted(taint.sanitizers_used),
        inferred_bound=summary.inferred,
        declared=declared,
    )


def _taint_process(index: ProjectIndex, info: ClassInfo) -> TaintReport:
    warm = TaintInterpreter(index, reporting=False)
    inst = warm.instantiate(info)
    receive_args = [Taint.CLEAN, Taint.RAW]
    for _ in range(_FIXPOINT_LIMIT):
        before = inst.snapshot()
        warm.run_method(inst, "receive", receive_args)
        if inst.snapshot() == before:
            break
    reporter = TaintInterpreter(index, reporting=True)
    reporter.run_method(inst, "receive", receive_args)
    _check_payload(reporter, index, inst.cls, inst, "outgoing", [Taint.CLEAN])
    reporter.report.sanitizers_used |= warm.report.sanitizers_used
    return reporter.report


def _taint_automaton(index: ProjectIndex, info: ClassInfo) -> TaintReport:
    warm = TaintInterpreter(index, reporting=False)
    inst = warm.instantiate(info)
    state_taint, _ = warm.run_method(
        inst, "transition", [Taint.CLEAN, Taint.RAW]
    )
    reporter = TaintInterpreter(index, reporting=True)
    reporter.run_method(inst, "transition", [Taint.CLEAN, Taint.RAW])
    _check_payload(
        reporter, index, info, inst, "message",
        [Taint.CLEAN, Taint.CLEAN, state_taint],
    )
    _check_decision(reporter, index, info, inst, state_taint)
    reporter.report.sanitizers_used |= warm.report.sanitizers_used
    return reporter.report


def _check_payload(
    reporter: TaintInterpreter,
    index: ProjectIndex,
    info: ClassInfo,
    inst: Instance,
    method_name: str,
    args: List[Taint],
) -> None:
    _, sites = reporter.run_method(inst, method_name, args)
    found = index.find_method(info, method_name)
    if found is None:
        return
    owner, _ = found
    for node, taint in sites:
        if taint is Taint.RAW:
            reporter.report.findings.append(
                Finding(
                    path=owner.module.relative,
                    line=getattr(node, "lineno", owner.node.lineno),
                    col=getattr(node, "col_offset", 0),
                    rule=TAINT002.id,
                    symbol=f"{owner.name}.{method_name}",
                    message=(
                        "outgoing payload carries a value derived from "
                        "receive() that never passed a recognized "
                        "sanitizer — a faulty sender's bytes would be "
                        "relayed verbatim"
                    ),
                )
            )
    reporter.report.payload_taint = max(
        reporter.report.payload_taint,
        max((taint for _, taint in sites), default=Taint.CLEAN),
    )


def _check_decision(
    reporter: TaintInterpreter,
    index: ProjectIndex,
    info: ClassInfo,
    inst: Instance,
    state_taint: Taint,
) -> None:
    from repro.statics.flow.rules import TAINT001

    _, sites = reporter.run_method(
        inst, "decision", [Taint.CLEAN, state_taint]
    )
    found = index.find_method(info, "decision")
    if found is None:
        return
    owner, _ = found
    for node, taint in sites:
        if taint is Taint.RAW:
            reporter.report.decision_taint = Taint.RAW
            reporter.report.findings.append(
                Finding(
                    path=owner.module.relative,
                    line=getattr(node, "lineno", owner.node.lineno),
                    col=getattr(node, "col_offset", 0),
                    rule=TAINT001.id,
                    symbol=f"{owner.name}.decision",
                    message=(
                        "gamma_p returns a value derived from the "
                        "message tuple that never passed a recognized "
                        "sanitizer (majority/threshold/legality filter)"
                    ),
                )
            )


# -- COM: declared vs inferred bounds ----------------------------------------


def _check_bounds(
    info: ClassInfo,
    summary: SizeSummary,
    declared: Optional[BoundDecl],
) -> List[Finding]:
    findings: List[Finding] = []
    path = info.module.relative
    if declared is None:
        findings.append(
            Finding(
                path=path,
                line=info.node.lineno,
                col=info.node.col_offset,
                rule=COM003.id,
                symbol=info.name,
                message=(
                    f"certified protocol {info.name} has no "
                    "MESSAGE_BOUNDS entry; declare its per-round payload "
                    "bound ('constant', 'linear', or 'history' with a "
                    "justification)"
                ),
            )
        )
        return findings
    if declared.bound not in SIZE_NAMES:
        findings.append(
            Finding(
                path=path,
                line=declared.line,
                col=0,
                rule=COM003.id,
                symbol=info.name,
                message=(
                    f"MESSAGE_BOUNDS entry for {info.name} declares "
                    f"unknown bound {declared.bound!r}; expected "
                    "'constant', 'linear', or 'history'"
                ),
            )
        )
        return findings
    declared_size = SIZE_NAMES[declared.bound]
    if declared_size < summary.inferred and not declared.justification:
        findings.append(
            Finding(
                path=path,
                line=declared.line,
                col=0,
                rule=COM002.id,
                symbol=info.name,
                message=(
                    f"MESSAGE_BOUNDS declares {declared.bound!r} but the "
                    f"size interpreter infers "
                    f"{size_name(summary.inferred)!r} (accumulating: "
                    f"{sorted(summary.accumulating) or 'none'}); add the "
                    "(bound, justification) form naming the invariant — "
                    "e.g. a MessageSizer ceiling or depth cap — the "
                    "analysis cannot see"
                ),
            )
        )
    if (
        summary.inferred is Size.HISTORY
        and declared_size is Size.HISTORY
        and not declared.justification
    ):
        findings.append(
            Finding(
                path=path,
                line=declared.line,
                col=0,
                rule=COM001.id,
                symbol=info.name,
                message=(
                    f"{info.name} sends history-accumulating payloads; "
                    "route it through repro.compact (Theorem 5) or "
                    "justify why full-information growth is intended"
                ),
            )
        )
    return findings


# -- declaration validation --------------------------------------------------


def _validate_declarations(
    module: ModuleInfo, certified_names: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for declaration, line, problem in module.malformed:
        findings.append(
            Finding(
                path=module.relative,
                line=line,
                col=0,
                rule=(
                    TAINT003.id
                    if declaration == "TAINT_SANITIZERS"
                    else COM003.id
                ),
                symbol="<module>",
                message=f"malformed {declaration} declaration: {problem}",
            )
        )
    method_names = {
        f"{cls.name}.{name}"
        for cls in module.classes.values()
        for name in cls.methods
    }
    bare_methods = {
        name for cls in module.classes.values() for name in cls.methods
    }
    for key, decl in sorted(module.sanitizers.items()):
        exists = (
            key in module.functions
            or key in method_names
            or key in bare_methods
            or key in module.imports
        )
        if not exists:
            findings.append(
                Finding(
                    path=module.relative,
                    line=decl.line,
                    col=0,
                    rule=TAINT003.id,
                    symbol="<module>",
                    message=(
                        f"TAINT_SANITIZERS names {key!r}, which this "
                        "module does not define — dead entries would "
                        "silently launder adversarial data"
                    ),
                )
            )
        elif not decl.justification.strip():
            findings.append(
                Finding(
                    path=module.relative,
                    line=decl.line,
                    col=0,
                    rule=TAINT003.id,
                    symbol="<module>",
                    message=(
                        f"TAINT_SANITIZERS entry {key!r} has no "
                        "justification; state why its output is safe "
                        "against Byzantine inputs"
                    ),
                )
            )
    for key, bound in sorted(module.bounds.items()):
        if key not in certified_names:
            findings.append(
                Finding(
                    path=module.relative,
                    line=bound.line,
                    col=0,
                    rule=COM003.id,
                    symbol="<module>",
                    message=(
                        f"MESSAGE_BOUNDS names {key!r}, which is not a "
                        "certified protocol class in this module — "
                        "remove the dead entry"
                    ),
                )
            )
    return findings
