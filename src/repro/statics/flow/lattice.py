"""The two abstract domains protoflow interprets over.

Both are tiny totally-ordered join-semilattices; ``join`` is ``max``.

* :class:`Taint` — how much of a value an adversary controls.
  ``RAW`` values came from ``receive()`` and passed no filter;
  ``FILTERED`` values passed a recognized sanitizer (or a threshold
  guard); ``CLEAN`` values never touched the network.  Only ``RAW``
  is flagged at the decision / payload sinks — a filtered value is by
  definition one the protocol's fault-tolerance argument accounts for.

* :class:`Size` — the symbolic per-round bit bound of a value.
  ``CONSTANT`` is O(1) in both n and the round number, ``LINEAR`` is
  O(n) per round (one entry per processor, or a buffer drained every
  send), ``HISTORY`` grows with the execution (the full-information
  regime Theorem 5 compiles away).

:class:`SizeVal` pairs a :class:`Size` with the set of ``self``
attributes the value was derived from, so the size interpreter can
recognize self-referential growth (``self.state`` rebuilt from a local
that was read from ``self.state``) through local variables.
"""

from __future__ import annotations

import dataclasses
import enum
from typing import FrozenSet, Iterable


class Taint(enum.IntEnum):
    """Adversary influence on a value; ``join`` is ``max``."""

    CLEAN = 0
    FILTERED = 1
    RAW = 2


def join_taint(*values: Taint) -> Taint:
    """The least upper bound (most adversarial) of ``values``."""
    result = Taint.CLEAN
    for value in values:
        if value > result:
            result = value
    return result


def demote(value: Taint) -> Taint:
    """``RAW`` becomes ``FILTERED`` (a guard vouched for it)."""
    return Taint.FILTERED if value is Taint.RAW else value


class Size(enum.IntEnum):
    """Symbolic per-round bit bound; ``join`` is ``max``."""

    CONSTANT = 0
    LINEAR = 1
    HISTORY = 2


#: The literal spellings accepted by ``MESSAGE_BOUNDS`` declarations.
SIZE_NAMES = {
    "constant": Size.CONSTANT,
    "linear": Size.LINEAR,
    "history": Size.HISTORY,
}


def size_name(value: Size) -> str:
    """The declaration spelling of ``value`` (inverse of SIZE_NAMES)."""
    return value.name.lower()


@dataclasses.dataclass(frozen=True)
class SizeVal:
    """A size bound plus the ``self`` attributes it was derived from."""

    size: Size = Size.CONSTANT
    deps: FrozenSet[str] = frozenset()

    def widen(self, size: Size) -> "SizeVal":
        """The same dependencies at ``max(self.size, size)``."""
        return SizeVal(max(self.size, size), self.deps)


def join_sizes(values: Iterable[SizeVal]) -> SizeVal:
    """Pointwise join: max bound, union of attribute dependencies."""
    size = Size.CONSTANT
    deps: FrozenSet[str] = frozenset()
    for value in values:
        if value.size > size:
            size = value.size
        deps = deps | value.deps
    return SizeVal(size, deps)
