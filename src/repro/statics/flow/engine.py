"""The interprocedural taint interpreter (TAINT rule family).

Values delivered by ``receive()`` (and an automaton's ``messages``
argument) start ``RAW`` — a Byzantine sender controls them completely.
The interpreter pushes taint through assignments, calls (resolved
through ``self`` methods, inherited methods, and helper objects bound
in ``__init__``), containers, and comprehensions, and flags ``RAW``
values reaching the two sinks the fault-tolerance argument cares
about: ``self.decide(...)`` (TAINT001) and the returned payload of
``outgoing`` / ``message`` (TAINT002).

Taint drops to ``FILTERED`` — accounted for, never flagged — at:

* a call whose terminal name is a recognized sanitizer (the global
  registry plus the module's ``TAINT_SANITIZERS`` declaration);
* a local that was an argument of a sanitizer call used as a branch
  test (``if not self._valid(x): return`` leaves ``x`` filtered on
  the fall-through path, ``if self._valid(x): ...`` inside the body);
* any load evaluated under a *threshold guard* — an ``if`` whose test
  compares against ``config.n`` / ``config.t`` arithmetic or a
  ``len(...)`` count (the quorum idiom every agreement protocol uses).

Comparisons and ``len`` produce clean values: protoflow deliberately
does not track implicit flows — a 1-bit channel through a branch
condition is part of every threshold protocol's design, not a leak.

The analysis is a per-class fixpoint: ``receive`` is re-interpreted
until the ``self`` attribute taints (including those of bound helper
objects) stabilize, then one reporting pass runs over the sinks.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.statics.findings import Finding
from repro.statics.flow.lattice import Taint, demote, join_taint
from repro.statics.flow.model import ClassInfo, ModuleInfo, ProjectIndex
from repro.statics.flow.rules import TAINT001, TAINT002

#: Builtins whose result carries no adversarial content.
_CLEAN_CALLS = frozenset(
    {
        "len", "isinstance", "issubclass", "range", "bool", "int",
        "float", "str", "repr", "hash", "type", "enumerate",
    }
)

#: Mutating container methods: receiver absorbs the argument taints.
_MUTATORS = frozenset(
    {
        "append", "add", "extend", "insert", "update", "setdefault",
        "discard", "remove", "pop", "popitem", "clear", "learn",
    }
)

_MAX_DEPTH = 12
_MAX_ITERATIONS = 8

Value = Union[Taint, "Instance"]


@dataclasses.dataclass
class Instance:
    """The abstract state of one object: attr taints + bound helpers."""

    cls: ClassInfo
    attrs: Dict[str, Taint] = dataclasses.field(default_factory=dict)
    objects: Dict[str, "Instance"] = dataclasses.field(default_factory=dict)

    def snapshot(self) -> Tuple[Tuple[str, int], ...]:
        flat: List[Tuple[str, int]] = sorted(
            (name, int(taint)) for name, taint in self.attrs.items()
        )
        for name in sorted(self.objects):
            flat.extend(
                (f"{name}.{inner}", value)
                for inner, value in self.objects[name].snapshot()
            )
        return tuple(flat)


def taint_of(value: Value) -> Taint:
    """The payload taint of a value (object identity itself is clean)."""
    if isinstance(value, Instance):
        return join_taint(*value.attrs.values()) if value.attrs else Taint.CLEAN
    return value


@dataclasses.dataclass
class TaintReport:
    """What one class's taint analysis produced."""

    findings: List[Finding] = dataclasses.field(default_factory=list)
    sanitizers_used: Set[str] = dataclasses.field(default_factory=set)
    payload_taint: Taint = Taint.CLEAN
    decision_taint: Taint = Taint.CLEAN


class _Frame:
    """One interpreted method activation."""

    def __init__(
        self,
        inst: Instance,
        module: ModuleInfo,
        symbol: str,
        env: Dict[str, Value],
        guard: bool = False,
    ):
        self.inst = inst
        self.module = module
        self.symbol = symbol
        self.env = env
        self.guard = guard
        self.returns: List[Tuple[ast.AST, Taint]] = []


class TaintInterpreter:
    """Interprets one certified class; reuse one instance per class."""

    def __init__(self, index: ProjectIndex, reporting: bool = False):
        self.index = index
        self.reporting = reporting
        self.report = TaintReport()
        self._in_progress: Set[Tuple[int, str]] = set()

    # -- entry points --------------------------------------------------------

    def instantiate(
        self, info: ClassInfo, args: Optional[Sequence[Taint]] = None
    ) -> Instance:
        """Abstractly run ``__init__`` to build the attribute state."""
        inst = Instance(cls=info)
        found = self.index.find_method(info, "__init__")
        if found is not None:
            owner, method = found
            self._call(
                inst, owner, method, list(args or []), depth=0
            )
        return inst

    def run_method(
        self,
        inst: Instance,
        name: str,
        args: Sequence[Taint],
    ) -> Tuple[Taint, List[Tuple[ast.AST, Taint]]]:
        """Interpret ``inst.name(*args)``; returns (taint, return sites)."""
        found = self.index.find_method(inst.cls, name)
        if found is None:
            return join_taint(*args) if args else Taint.CLEAN, []
        owner, method = found
        return self._call_with_sites(inst, owner, method, list(args), 0)

    # -- call machinery ------------------------------------------------------

    def _call(
        self,
        inst: Instance,
        owner: ClassInfo,
        method: ast.FunctionDef,
        args: List[Taint],
        depth: int,
    ) -> Taint:
        taint, _ = self._call_with_sites(inst, owner, method, args, depth)
        return taint

    def _call_with_sites(
        self,
        inst: Instance,
        owner: ClassInfo,
        method: ast.FunctionDef,
        args: List[Taint],
        depth: int,
    ) -> Tuple[Taint, List[Tuple[ast.AST, Taint]]]:
        key = (id(inst), method.name)
        fallback = join_taint(*args) if args else Taint.CLEAN
        if depth > _MAX_DEPTH or key in self._in_progress:
            return fallback, []
        self._in_progress.add(key)
        try:
            env: Dict[str, Value] = {}
            params = [arg.arg for arg in method.args.args]
            if params and params[0] == "self":
                params = params[1:]
            for position, name in enumerate(params):
                env[name] = (
                    args[position] if position < len(args) else Taint.CLEAN
                )
            for name in [
                arg.arg
                for arg in method.args.kwonlyargs
            ]:
                env.setdefault(name, Taint.CLEAN)
            frame = _Frame(
                inst,
                owner.module,
                f"{owner.name}.{method.name}",
                env,
            )
            self._exec_block(method.body, frame, depth)
            if frame.returns:
                result = join_taint(
                    *(taint for _, taint in frame.returns)
                )
            else:
                result = Taint.CLEAN
            return result, frame.returns
        finally:
            self._in_progress.discard(key)

    # -- statements ----------------------------------------------------------

    def _exec_block(
        self, body: Sequence[ast.stmt], frame: _Frame, depth: int
    ) -> None:
        for stmt in body:
            self._exec(stmt, frame, depth)

    def _exec(self, stmt: ast.stmt, frame: _Frame, depth: int) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            self._exec_assign(stmt, frame, depth)
        elif isinstance(stmt, ast.If):
            self._exec_if(stmt, frame, depth)
        elif isinstance(stmt, (ast.For, ast.While)):
            self._exec_loop(stmt, frame, depth)
        elif isinstance(stmt, ast.Return):
            taint = (
                self._eval(stmt.value, frame, depth)
                if stmt.value is not None
                else Taint.CLEAN
            )
            frame.returns.append((stmt, taint_of(taint)))
        elif isinstance(stmt, ast.Expr):
            self._eval(stmt.value, frame, depth)
        elif isinstance(stmt, (ast.With, ast.Try)):
            for field in ast.iter_child_nodes(stmt):
                if isinstance(field, ast.stmt):
                    self._exec(field, frame, depth)
            if isinstance(stmt, ast.Try):
                for handler in stmt.handlers:
                    self._exec_block(handler.body, frame, depth)
                self._exec_block(stmt.finalbody, frame, depth)
            else:
                self._exec_block(stmt.body, frame, depth)
        elif isinstance(stmt, (ast.Raise, ast.Assert)):
            for child in ast.iter_child_nodes(stmt):
                if isinstance(child, ast.expr):
                    self._eval(child, frame, depth)
        # pass / break / continue / defs: no dataflow effect.

    def _exec_assign(self, stmt: ast.stmt, frame: _Frame, depth: int) -> None:
        if isinstance(stmt, ast.Assign):
            targets, value = stmt.targets, stmt.value
        elif isinstance(stmt, ast.AnnAssign):
            if stmt.value is None:
                return
            targets, value = [stmt.target], stmt.value
        else:
            assert isinstance(stmt, ast.AugAssign)
            targets, value = [stmt.target], stmt.value
        result = self._eval(value, frame, depth)
        augment = isinstance(stmt, ast.AugAssign)
        for target in targets:
            self._store(target, result, frame, augment=augment)

    def _store(
        self,
        target: ast.expr,
        value: Value,
        frame: _Frame,
        augment: bool = False,
    ) -> None:
        if isinstance(target, ast.Name):
            if augment:
                value = join_taint(
                    taint_of(value),
                    taint_of(frame.env.get(target.id, Taint.CLEAN)),
                )
            frame.env[target.id] = value
        elif isinstance(target, ast.Attribute):
            chain = _chain(target)
            if chain is not None and chain[0] == "self" and len(chain) >= 2:
                self._store_attr(frame.inst, chain[1:], value)
        elif isinstance(target, ast.Subscript):
            # ``container[key] = value`` — the container absorbs both.
            inner = target.value
            slice_taint = taint_of(self._eval(target.slice, frame, 0))
            absorbed = join_taint(taint_of(value), slice_taint)
            if isinstance(inner, ast.Name):
                previous = frame.env.get(inner.id, Taint.CLEAN)
                if isinstance(value, Instance):
                    frame.env[inner.id] = value
                else:
                    frame.env[inner.id] = join_taint(
                        taint_of(previous), absorbed
                    )
            elif isinstance(inner, ast.Attribute):
                chain = _chain(inner)
                if chain is not None and chain[0] == "self":
                    if isinstance(value, Instance):
                        self._bind_object(frame.inst, chain[1:], value)
                    else:
                        self._store_attr(
                            frame.inst, chain[1:], absorbed, monotone=True
                        )
        elif isinstance(target, (ast.Tuple, ast.List)):
            for element in target.elts:
                self._store(element, taint_of(value), frame)

    def _store_attr(
        self,
        inst: Instance,
        chain: List[str],
        value: Value,
        monotone: bool = True,
    ) -> None:
        if not chain:
            return
        head = chain[0]
        if len(chain) > 1:
            nested = inst.objects.get(head)
            if nested is not None:
                self._store_attr(nested, chain[1:], value, monotone)
            else:
                inst.attrs[head] = join_taint(
                    inst.attrs.get(head, Taint.CLEAN), taint_of(value)
                )
            return
        if isinstance(value, Instance):
            self._bind_object(inst, chain, value)
            return
        # Attribute taints only grow during the fixpoint; a drain/reset
        # (``self._outbox = []``) therefore cannot launder earlier taint.
        if monotone:
            inst.attrs[head] = join_taint(
                inst.attrs.get(head, Taint.CLEAN), value
            )
        else:
            inst.attrs[head] = value

    def _bind_object(
        self, inst: Instance, chain: List[str], value: Instance
    ) -> None:
        if not chain:
            return
        head = chain[0]
        existing = inst.objects.get(head)
        if existing is not None and existing.cls is value.cls:
            for name, taint in value.attrs.items():
                existing.attrs[name] = join_taint(
                    existing.attrs.get(name, Taint.CLEAN), taint
                )
            for name, nested in value.objects.items():
                existing.objects.setdefault(name, nested)
        else:
            inst.objects[head] = value

    # -- branches ------------------------------------------------------------

    def _exec_if(self, stmt: ast.If, frame: _Frame, depth: int) -> None:
        self._eval(stmt.test, frame, depth)
        sanitized_body = _sanitizer_args(stmt.test, frame.module, False)
        sanitized_else = _sanitizer_args(stmt.test, frame.module, True)
        threshold = _is_threshold_test(stmt.test, frame.module)

        body_env = dict(frame.env)
        else_env = dict(frame.env)
        for name in sanitized_body:
            if name in body_env:
                body_env[name] = demote(taint_of(body_env[name]))
        for name in sanitized_else:
            if name in else_env:
                else_env[name] = demote(taint_of(else_env[name]))

        body_frame = _Frame(
            frame.inst, frame.module, frame.symbol, body_env,
            guard=frame.guard or threshold,
        )
        body_frame.returns = frame.returns
        self._exec_block(stmt.body, body_frame, depth)
        else_frame = _Frame(
            frame.inst, frame.module, frame.symbol, else_env,
            guard=frame.guard,
        )
        else_frame.returns = frame.returns
        self._exec_block(stmt.orelse, else_frame, depth)

        body_abrupt = _is_abrupt(stmt.body)
        else_abrupt = stmt.orelse and _is_abrupt(stmt.orelse)
        if body_abrupt and not else_abrupt:
            frame.env = else_frame.env
        elif else_abrupt and not body_abrupt:
            frame.env = body_frame.env
        else:
            merged: Dict[str, Value] = {}
            for name in set(body_frame.env) | set(else_frame.env):
                left = body_frame.env.get(name, Taint.CLEAN)
                right = else_frame.env.get(name, Taint.CLEAN)
                if isinstance(left, Instance) and left is right:
                    merged[name] = left
                else:
                    merged[name] = join_taint(taint_of(left), taint_of(right))
            frame.env = merged

    def _exec_loop(
        self, stmt: Union[ast.For, ast.While], frame: _Frame, depth: int
    ) -> None:
        if isinstance(stmt, ast.For):
            iterable = self._eval(stmt.iter, frame, depth)
            element: Value
            if isinstance(iterable, Instance):
                element = iterable
            else:
                element = taint_of(iterable)
            self._store(stmt.target, element, frame)
        else:
            self._eval(stmt.test, frame, depth)
        # Two passes propagate loop-carried taint to a fixpoint for
        # this 3-point lattice (one pass to taint, one to observe).
        for _ in range(2):
            self._exec_block(stmt.body, frame, depth)
        self._exec_block(stmt.orelse, frame, depth)

    # -- expressions ---------------------------------------------------------

    def _eval(
        self, node: Optional[ast.expr], frame: _Frame, depth: int
    ) -> Value:
        if node is None:
            return Taint.CLEAN
        if isinstance(node, ast.Constant):
            return Taint.CLEAN
        if isinstance(node, ast.Name):
            value = frame.env.get(node.id, Taint.CLEAN)
            if frame.guard and not isinstance(value, Instance):
                return demote(value)
            return value
        if isinstance(node, ast.Attribute):
            return self._eval_attribute(node, frame)
        if isinstance(node, ast.Call):
            return self._eval_call(node, frame, depth)
        if isinstance(node, ast.Subscript):
            container = self._eval(node.value, frame, depth)
            if isinstance(container, Instance):
                return container
            self._eval(node.slice, frame, depth)
            return container
        if isinstance(node, (ast.Compare, ast.UnaryOp)):
            for child in ast.iter_child_nodes(node):
                if isinstance(child, ast.expr):
                    self._eval(child, frame, depth)
            return Taint.CLEAN
        if isinstance(node, ast.BoolOp):
            return join_taint(
                *(taint_of(self._eval(value, frame, depth))
                  for value in node.values)
            )
        if isinstance(node, ast.BinOp):
            return join_taint(
                taint_of(self._eval(node.left, frame, depth)),
                taint_of(self._eval(node.right, frame, depth)),
            )
        if isinstance(node, ast.IfExp):
            self._eval(node.test, frame, depth)
            guarded = frame.guard or _is_threshold_test(
                node.test, frame.module
            )
            inner = _Frame(
                frame.inst, frame.module, frame.symbol, frame.env, guarded
            )
            return join_taint(
                taint_of(self._eval(node.body, inner, depth)),
                taint_of(self._eval(node.orelse, inner, depth)),
            )
        if isinstance(node, (ast.Tuple, ast.List, ast.Set)):
            return join_taint(
                *(taint_of(self._eval(item, frame, depth))
                  for item in node.elts)
            ) if node.elts else Taint.CLEAN
        if isinstance(node, ast.Dict):
            taints = [
                taint_of(self._eval(key, frame, depth))
                for key in node.keys
                if key is not None
            ]
            taints.extend(
                taint_of(self._eval(value, frame, depth))
                for value in node.values
            )
            return join_taint(*taints) if taints else Taint.CLEAN
        if isinstance(
            node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
        ):
            return self._eval_comprehension(node, frame, depth)
        if isinstance(node, ast.Starred):
            return self._eval(node.value, frame, depth)
        if isinstance(node, ast.Lambda):
            return Taint.CLEAN
        if isinstance(node, (ast.JoinedStr, ast.FormattedValue)):
            taints = [
                taint_of(self._eval(child, frame, depth))
                for child in ast.iter_child_nodes(node)
                if isinstance(child, ast.expr)
            ]
            return join_taint(*taints) if taints else Taint.CLEAN
        # Unknown expression kind: join every child expression.
        taints = [
            taint_of(self._eval(child, frame, depth))
            for child in ast.iter_child_nodes(node)
            if isinstance(child, ast.expr)
        ]
        return join_taint(*taints) if taints else Taint.CLEAN

    def _eval_attribute(self, node: ast.Attribute, frame: _Frame) -> Value:
        chain = _chain(node)
        if chain is not None and chain[0] == "self":
            value = self._load_attr(frame.inst, chain[1:])
            if frame.guard and not isinstance(value, Instance):
                return demote(taint_of(value))
            return value
        if chain is not None and chain[0] in frame.env:
            base = frame.env[chain[0]]
            if isinstance(base, Instance):
                return self._load_attr(base, chain[1:])
            return demote(base) if frame.guard else base
        return Taint.CLEAN

    def _load_attr(self, inst: Instance, chain: List[str]) -> Value:
        if not chain:
            return inst
        head = chain[0]
        nested = inst.objects.get(head)
        if nested is not None:
            return self._load_attr(nested, chain[1:])
        return inst.attrs.get(head, Taint.CLEAN)

    def _eval_comprehension(
        self, node: ast.expr, frame: _Frame, depth: int
    ) -> Value:
        inner = _Frame(
            frame.inst, frame.module, frame.symbol, dict(frame.env),
            frame.guard,
        )
        guarded = frame.guard
        for comp in node.generators:  # type: ignore[attr-defined]
            iterable = self._eval(comp.iter, inner, depth)
            element: Value
            if isinstance(iterable, Instance):
                element = iterable
            else:
                element = taint_of(iterable)
            self._store(comp.target, element, inner)
            for condition in comp.ifs:
                self._eval(condition, inner, depth)
                for name in _sanitizer_args(
                    condition, frame.module, negated=False
                ):
                    if name in inner.env:
                        inner.env[name] = demote(
                            taint_of(inner.env[name])
                        )
                guarded = guarded or _is_threshold_test(
                    condition, frame.module
                )
        inner.guard = guarded
        if isinstance(node, ast.DictComp):
            return join_taint(
                taint_of(self._eval(node.key, inner, depth)),
                taint_of(self._eval(node.value, inner, depth)),
            )
        return taint_of(
            self._eval(node.elt, inner, depth)  # type: ignore[attr-defined]
        )

    # -- calls ---------------------------------------------------------------

    def _eval_call(
        self, node: ast.Call, frame: _Frame, depth: int
    ) -> Value:
        arg_values = [self._eval(arg, frame, depth) for arg in node.args]
        arg_values.extend(
            self._eval(keyword.value, frame, depth)
            for keyword in node.keywords
        )
        arg_taints = [taint_of(value) for value in arg_values]
        joined = join_taint(*arg_taints) if arg_taints else Taint.CLEAN
        chain = _chain(node.func)
        terminal = chain[-1] if chain else None
        if terminal is None and isinstance(node.func, ast.Attribute):
            # ``something().method(...)`` — receiver not a pure chain.
            receiver = self._eval(node.func.value, frame, depth)
            return join_taint(taint_of(receiver), joined)

        # Sanitizers launder; record which ones the class relies on.
        if terminal is not None and terminal in frame.module.sanitizer_names():
            self.report.sanitizers_used.add(terminal)
            return Taint.FILTERED if joined is Taint.RAW else joined

        if terminal in _CLEAN_CALLS:
            return Taint.CLEAN

        # Constructor of an indexed class -> a fresh abstract instance.
        constructed = self.index.resolve_class(frame.module, node.func)
        if constructed is not None and (
            terminal == constructed.name
        ):
            interpreter = self
            instance = Instance(cls=constructed)
            found = self.index.find_method(constructed, "__init__")
            if found is not None:
                owner, method = found
                interpreter._call(
                    instance, owner, method, arg_taints, depth + 1
                )
            return instance

        assert chain is not None or terminal is None
        if chain is not None and chain[0] == "self":
            return self._eval_self_call(
                node, chain, arg_taints, joined, frame, depth
            )

        if chain is not None and chain[0] in frame.env:
            receiver = frame.env[chain[0]]
            if isinstance(receiver, Instance) and len(chain) >= 2:
                return self._call_on_instance(
                    receiver, chain[1:], arg_taints, joined, depth
                )
            if terminal in _MUTATORS and isinstance(
                node.func, ast.Attribute
            ):
                base = node.func.value
                if isinstance(base, ast.Name):
                    previous = frame.env.get(base.id, Taint.CLEAN)
                    frame.env[base.id] = join_taint(
                        taint_of(previous), joined
                    )
            return join_taint(taint_of(receiver), joined)

        if terminal == "broadcast" and arg_taints:
            return arg_taints[0]

        # Module-level function defined here: interpret it.
        if (
            chain is not None
            and len(chain) == 1
            and terminal in frame.module.functions
        ):
            return self._call_function(
                frame.module, frame.module.functions[terminal],
                arg_taints, depth,
            )
        return joined

    def _eval_self_call(
        self,
        node: ast.Call,
        chain: List[str],
        arg_taints: List[Taint],
        joined: Taint,
        frame: _Frame,
        depth: int,
    ) -> Value:
        # self.decide(value, ...) — the decision sink.
        if len(chain) == 2 and chain[1] == "decide":
            value = (
                taint_of(self._eval(node.args[0], frame, depth))
                if node.args
                else Taint.CLEAN
            )
            if frame.guard:
                value = demote(value)
            self.report.decision_taint = join_taint(
                self.report.decision_taint, value
            )
            if value is Taint.RAW and self.reporting:
                self.report.findings.append(
                    Finding(
                        path=frame.module.relative,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=TAINT001.id,
                        symbol=frame.symbol,
                        message=(
                            "decide() receives a value derived from "
                            "receive() that never passed a recognized "
                            "sanitizer (majority/threshold/legality "
                            "filter)"
                        ),
                    )
                )
            return Taint.CLEAN
        if len(chain) == 2:
            found = self.index.find_method(frame.inst.cls, chain[1])
            if found is not None:
                owner, method = found
                return self._call(
                    frame.inst, owner, method, arg_taints, depth + 1
                )
            if chain[1] in _MUTATORS:
                return joined
            return joined
        # self.attr.method(...) — resolved through the binding map.
        return self._call_on_instance(
            self._resolve_receiver(frame.inst, chain[1:-1]),
            chain[-1:],
            arg_taints,
            joined,
            depth,
            fallback_attr=(frame.inst, chain[1]),
        )

    def _resolve_receiver(
        self, inst: Instance, chain: List[str]
    ) -> Optional[Instance]:
        current: Optional[Instance] = inst
        for name in chain:
            if current is None:
                return None
            current = current.objects.get(name)
        return current

    def _call_on_instance(
        self,
        receiver: Optional[Instance],
        chain: List[str],
        arg_taints: List[Taint],
        joined: Taint,
        depth: int,
        fallback_attr: Optional[Tuple[Instance, str]] = None,
    ) -> Value:
        if receiver is None:
            # Unknown receiver: a mutator call still taints the
            # attribute it targets so stored values keep their taint.
            if fallback_attr is not None and chain and chain[-1] in _MUTATORS:
                owner, attr = fallback_attr
                owner.attrs[attr] = join_taint(
                    owner.attrs.get(attr, Taint.CLEAN), joined
                )
            return joined
        name = chain[-1]
        module = receiver.cls.module
        if name in module.sanitizer_names():
            self.report.sanitizers_used.add(name)
            return Taint.FILTERED if joined is Taint.RAW else joined
        found = self.index.find_method(receiver.cls, name)
        if found is not None:
            owner, method = found
            return self._call(receiver, owner, method, arg_taints, depth + 1)
        if name in _MUTATORS:
            for attr in list(receiver.attrs) or ["_items"]:
                receiver.attrs[attr] = join_taint(
                    receiver.attrs.get(attr, Taint.CLEAN), joined
                )
        return joined

    def _call_function(
        self,
        module: ModuleInfo,
        function: ast.FunctionDef,
        arg_taints: List[Taint],
        depth: int,
    ) -> Taint:
        key = (id(module), function.name)
        fallback = (
            join_taint(*arg_taints) if arg_taints else Taint.CLEAN
        )
        if depth > _MAX_DEPTH or key in self._in_progress:
            return fallback
        self._in_progress.add(key)
        try:
            env: Dict[str, Value] = {}
            params = [arg.arg for arg in function.args.args]
            for position, name in enumerate(params):
                env[name] = (
                    arg_taints[position]
                    if position < len(arg_taints)
                    else Taint.CLEAN
                )
            frame = _Frame(
                Instance(cls=ClassInfo(
                    name="<module>", qualname=module.qualname,
                    module=module, node=ast.ClassDef(
                        name="<module>", bases=[], keywords=[], body=[],
                        decorator_list=[],
                    ), bases=[],
                )),
                module,
                function.name,
                env,
            )
            self._exec_block(function.body, frame, depth + 1)
            if frame.returns:
                return join_taint(*(taint for _, taint in frame.returns))
            return Taint.CLEAN
        finally:
            self._in_progress.discard(key)


# -- guard classification ----------------------------------------------------


def _chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


def _is_abrupt(body: Sequence[ast.stmt]) -> bool:
    return bool(body) and isinstance(
        body[-1], (ast.Return, ast.Continue, ast.Break, ast.Raise)
    )


def _references_quorum(node: ast.AST) -> bool:
    for sub in ast.walk(node):
        if isinstance(sub, ast.Attribute) and sub.attr in ("n", "t"):
            chain = _chain(sub)
            if chain is not None and "config" in chain:
                return True
        if (
            isinstance(sub, ast.Call)
            and isinstance(sub.func, ast.Name)
            and sub.func.id == "len"
        ):
            return True
    return False


def _is_threshold_test(test: ast.expr, module: ModuleInfo) -> bool:
    """Whether ``test`` is a quorum/threshold comparison."""
    for sub in ast.walk(test):
        if isinstance(sub, ast.Compare) and _references_quorum(sub):
            return True
        if isinstance(sub, ast.Call):
            chain = _chain(sub.func)
            if chain and chain[-1] in module.sanitizer_names():
                return True
    return False


def _sanitizer_args(
    test: ast.expr, module: ModuleInfo, negated: bool
) -> List[str]:
    """Local names vouched for by a sanitizing branch test.

    ``negated=False`` returns the names filtered inside the *body* of
    ``if sanitizer(x):``; ``negated=True`` the names filtered on the
    *else*/fall-through path of ``if not sanitizer(x):``.
    """
    target: Optional[ast.expr] = None
    if negated:
        if isinstance(test, ast.UnaryOp) and isinstance(test.op, ast.Not):
            target = test.operand
    else:
        target = test
    if isinstance(target, ast.BoolOp) and isinstance(target.op, ast.And):
        # ``if san(x) and other:`` — the body only runs when every
        # conjunct held, so each conjunct's vouching stands.  (An
        # ``or`` cannot vouch: the body runs even if the sanitizer
        # conjunct was false.)
        names: List[str] = []
        for value in target.values:
            names.extend(_sanitizer_args(value, module, negated=False))
        return names
    if not isinstance(target, ast.Call):
        return []
    chain = _chain(target.func)
    if not chain or chain[-1] not in module.sanitizer_names():
        return []
    args: List[str] = []
    for arg in target.args:
        if isinstance(arg, ast.Name):
            args.append(arg.id)
    return args
