"""The communication-closedness pass (FLOW rule family).

The engine runs protocols in lockstep — ``outgoing(r)`` then
``receive(r)``, exactly once each per round — so the canonical form's
closedness property reduces to three checkable shape constraints on
the send and receive paths (each path followed interprocedurally
through ``self`` methods and ``__init__``-bound helper objects):

* **FLOW001** — the receive path must not capture the raw round-r
  message *map* into persistent state.  Storing individual received
  values is what state update *is*; storing the whole map indexed for
  later inspection re-opens round r after it closed.
* **FLOW002** — the send path must not read an attribute that nothing
  ever writes (not ``__init__``, not any method, not a class-level
  default, not an indexed ancestor).  Such state has no provenance in
  the round structure at all.
* **FLOW003** — the send path must not mutate processor state:
  ``mu_pq`` is a pure function of the end-of-round-(r-1) state.  Real
  protocols with a drain idiom (outbox swap) or send-side scheduling
  carry a justified baseline entry instead of a rewrite — the
  certificate then reports them ``waived`` rather than ``closed``.
"""

from __future__ import annotations

import ast
import dataclasses
from typing import Dict, List, Optional, Set, Tuple

from repro.statics.findings import Finding
from repro.statics.flow.model import ClassInfo, ProjectIndex
from repro.statics.flow.rules import FLOW001, FLOW002, FLOW003
from repro.statics.flow.sizes import reachable_methods, static_bindings

#: Mutating container methods on ``self``-rooted receivers.
_MUTATORS = frozenset(
    {
        "append", "add", "extend", "insert", "update", "setdefault",
        "discard", "remove", "pop", "popitem", "clear", "learn",
    }
)

#: Attributes the runtime base classes own; never "unprovenanced".
_BASE_ATTRS = frozenset(
    {"process_id", "config", "decided", "decision", "decision_round"}
)


def _chain(node: ast.AST) -> Optional[List[str]]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if isinstance(node, ast.Name):
        parts.append(node.id)
        return list(reversed(parts))
    return None


@dataclasses.dataclass
class FlowSummary:
    """FLOW findings for one certified class."""

    findings: List[Finding]
    structure: str


def analyze_flow(index: ProjectIndex, info: ClassInfo) -> FlowSummary:
    """Run all three FLOW checks over one ``Process`` subclass."""
    bindings = static_bindings(index, info)
    findings: List[Finding] = []
    send_path = reachable_methods(index, info, bindings, "outgoing")
    send_names = {
        (owner.qualname, name) for owner, name, _ in send_path
    }
    receive_path = [
        entry
        for entry in reachable_methods(index, info, bindings, "receive")
        if (entry[0].qualname, entry[1]) not in send_names
    ]
    findings.extend(_check_send_mutations(send_path))
    findings.extend(_check_map_capture(index, info, bindings))
    findings.extend(
        _check_provenance(index, info, bindings, send_path)
    )
    return FlowSummary(
        findings=sorted(findings), structure=_structure_of(index, info)
    )


def _structure_of(index: ProjectIndex, info: ClassInfo) -> str:
    """``"block(k)"`` for blocked protocols, ``"lockstep"`` otherwise.

    Block structure shows up as modular round arithmetic over the
    block parameter — either inline (``round % self.k``) or delegated
    to a schedule helper bound in ``__init__`` (``BlockSchedule``'s
    ``// self.block_length``), so bound helper classes are scanned too.
    """
    classes = list(index.mro(info))
    classes.extend(static_bindings(index, info).values())
    for cls in classes:
        for method in cls.methods.values():
            for node in ast.walk(method):
                if (
                    isinstance(node, ast.BinOp)
                    and isinstance(node.op, (ast.Mod, ast.FloorDiv))
                    and isinstance(node.right, ast.Attribute)
                    and node.right.attr in ("k", "block_length")
                ):
                    return "block(k)"
    return "lockstep"


# -- FLOW003: send-path purity -----------------------------------------------


def _check_send_mutations(
    send_path: List[Tuple[ClassInfo, str, ast.FunctionDef]]
) -> List[Finding]:
    findings: List[Finding] = []
    for owner, name, method in send_path:
        for node in ast.walk(method):
            mutation = _mutation_of(node)
            if mutation is None:
                continue
            attr, site = mutation
            findings.append(
                Finding(
                    path=owner.module.relative,
                    line=site.lineno,
                    col=site.col_offset,
                    rule=FLOW003.id,
                    symbol=f"{owner.name}.{name}",
                    message=(
                        f"send path writes self.{attr}; mu_pq must be a "
                        "pure function of the pre-round state (drain or "
                        "schedule in receive(), or baseline with the "
                        "invariant that makes this safe)"
                    ),
                )
            )
    return findings


def _mutation_of(node: ast.AST) -> Optional[Tuple[str, ast.AST]]:
    """The ``self`` attribute ``node`` mutates, if any."""
    target: Optional[ast.expr] = None
    if isinstance(node, ast.Assign):
        for candidate in node.targets:
            found = _self_rooted(candidate)
            if found is not None:
                return found, node
        # Tuple-swap drains mutate too: ``a, self.x = self.x, []``.
        for candidate in node.targets:
            if isinstance(candidate, (ast.Tuple, ast.List)):
                for element in candidate.elts:
                    found = _self_rooted(element)
                    if found is not None:
                        return found, node
        return None
    if isinstance(node, (ast.AugAssign, ast.AnnAssign)):
        if isinstance(node, ast.AnnAssign) and node.value is None:
            return None
        target = node.target
        found = _self_rooted(target)
        return (found, node) if found is not None else None
    if isinstance(node, ast.Call):
        chain = _chain(node.func)
        if (
            chain is not None
            and chain[0] == "self"
            and len(chain) >= 3
            and chain[-1] in _MUTATORS
        ):
            return chain[1], node
    if isinstance(node, ast.Delete):
        for candidate in node.targets:
            found = _self_rooted(candidate)
            if found is not None:
                return found, node
    return None


def _self_rooted(target: ast.expr) -> Optional[str]:
    if isinstance(target, ast.Subscript):
        target = target.value
    chain = _chain(target)
    if chain is not None and chain[0] == "self" and len(chain) >= 2:
        return chain[1]
    return None


# -- FLOW001: raw map capture ------------------------------------------------


def _check_map_capture(
    index: ProjectIndex, info: ClassInfo, bindings: Dict[str, ClassInfo]
) -> List[Finding]:
    findings: List[Finding] = []
    found = index.find_method(info, "receive")
    if found is None:
        return findings
    owner, method = found
    params = [arg.arg for arg in method.args.args]
    map_params = {params[2]} if len(params) >= 3 else set()
    # One level of interprocedural propagation: helpers the map is
    # passed to, by parameter position.
    frontier: List[Tuple[ClassInfo, ast.FunctionDef, Set[str]]] = [
        (owner, method, map_params)
    ]
    seen: Set[Tuple[str, str]] = set()
    while frontier:
        cls, fn, maps = frontier.pop(0)
        key = (cls.qualname, fn.name)
        if key in seen or not maps:
            continue
        seen.add(key)
        findings.extend(_map_captures_in(cls, fn, maps))
        for node in ast.walk(fn):
            if not isinstance(node, ast.Call):
                continue
            chain = _chain(node.func)
            if chain is None or chain[0] != "self":
                continue
            passed = {
                position
                for position, arg in enumerate(node.args)
                if isinstance(arg, ast.Name) and arg.id in maps
            }
            if not passed:
                continue
            target_class: Optional[ClassInfo] = None
            name = chain[-1]
            if len(chain) == 2:
                target_class = cls
            elif len(chain) >= 3 and chain[1] in bindings:
                target_class = bindings[chain[1]]
            if target_class is None:
                continue
            resolved = index.find_method(target_class, name)
            if resolved is None:
                continue
            callee_owner, callee = resolved
            callee_params = [arg.arg for arg in callee.args.args]
            if callee_params and callee_params[0] == "self":
                callee_params = callee_params[1:]
            callee_maps = {
                callee_params[position]
                for position in passed
                if position < len(callee_params)
            }
            frontier.append((callee_owner, callee, callee_maps))
    return findings


def _map_captures_in(
    cls: ClassInfo, fn: ast.FunctionDef, maps: Set[str]
) -> List[Finding]:
    findings: List[Finding] = []
    for node in ast.walk(fn):
        stored: Optional[str] = None
        site: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            if isinstance(node.value, ast.Name) and node.value.id in maps:
                for target in node.targets:
                    attr = _self_rooted(target)
                    if attr is not None:
                        stored, site = attr, node
        elif isinstance(node, ast.Call):
            chain = _chain(node.func)
            if (
                chain is not None
                and chain[0] == "self"
                and len(chain) >= 3
                and chain[-1] in ("append", "update", "setdefault", "add")
                and any(
                    isinstance(arg, ast.Name) and arg.id in maps
                    for arg in node.args
                )
            ):
                stored, site = chain[1], node
        if stored is not None and site is not None:
            findings.append(
                Finding(
                    path=cls.module.relative,
                    line=site.lineno,
                    col=site.col_offset,
                    rule=FLOW001.id,
                    symbol=f"{cls.name}.{fn.name}",
                    message=(
                        f"the raw incoming message map is captured into "
                        f"self.{stored}; extract and validate the values "
                        "this round instead of re-reading round-r "
                        "messages later (communication-closedness)"
                    ),
                )
            )
    return findings


# -- FLOW002: provenance of send-path reads ----------------------------------


def _check_provenance(
    index: ProjectIndex,
    info: ClassInfo,
    bindings: Dict[str, ClassInfo],
    send_path: List[Tuple[ClassInfo, str, ast.FunctionDef]],
) -> List[Finding]:
    written: Set[str] = set(_BASE_ATTRS)
    written.update(bindings)
    for cls in index.mro(info):
        for node in ast.walk(cls.node):
            if isinstance(node, (ast.Assign, ast.AugAssign, ast.AnnAssign)):
                targets = (
                    node.targets
                    if isinstance(node, ast.Assign)
                    else [node.target]
                )
                for target in targets:
                    attr = _self_rooted(target)
                    if attr is not None:
                        written.add(attr)
                    elif isinstance(target, (ast.Tuple, ast.List)):
                        for element in target.elts:
                            attr = _self_rooted(element)
                            if attr is not None:
                                written.add(attr)
                    elif isinstance(target, ast.Name):
                        # Class-level defaults double as attributes.
                        written.add(target.id)
            elif isinstance(node, ast.Call):
                chain = _chain(node.func)
                if (
                    chain is not None
                    and chain[0] == "self"
                    and len(chain) >= 3
                    and chain[-1] in _MUTATORS
                ):
                    written.add(chain[1])

    findings: List[Finding] = []
    flagged: Set[str] = set()
    mro_names = {cls.qualname for cls in index.mro(info)}
    for owner, name, method in send_path:
        if owner.qualname not in mro_names:
            # Helper-class methods read the helper's own state, not the
            # protocol's; their attributes are bound by their __init__.
            continue
        for node in ast.walk(method):
            if not isinstance(node, ast.Attribute):
                continue
            if not isinstance(node.ctx, ast.Load):
                continue
            chain = _chain(node)
            if (
                chain is not None
                and chain[0] == "self"
                and len(chain) >= 2
                and chain[1] not in written
                and chain[1] not in flagged
                and not _is_method_name(index, info, chain[1])
            ):
                flagged.add(chain[1])
                findings.append(
                    Finding(
                        path=owner.module.relative,
                        line=node.lineno,
                        col=node.col_offset,
                        rule=FLOW002.id,
                        symbol=f"{owner.name}.{name}",
                        message=(
                            f"send path reads self.{chain[1]}, which no "
                            "__init__, receive path, or class default "
                            "ever writes — the value has no provenance "
                            "in the round structure"
                        ),
                    )
                )
    return findings


def _is_method_name(
    index: ProjectIndex, info: ClassInfo, name: str
) -> bool:
    return index.find_method(info, name) is not None
