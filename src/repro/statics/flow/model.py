"""The project index: modules, classes, declarations, inheritance.

protoflow is *inter*procedural, so before any dataflow runs it builds
a whole-tree model: every module in the flow-scanned packages (plus
the runtime/automaton base modules, indexed so inheritance resolves
but never linted), every class with its import-resolved base names,
and the two module-level declaration dictionaries the passes trust:

``TAINT_SANITIZERS``
    ``{"name": "justification"}`` — functions or methods in this
    module whose return value counts as sanitized (majority votes,
    threshold filters, legality checks).  Keys may be bare names or
    ``Class.method``.

``MESSAGE_BOUNDS``
    ``{"ClassName": "constant" | ("bound", "justification")}`` — the
    per-round payload bound each certified protocol claims.  The tuple
    form is required whenever the declared bound is *below* what the
    size interpreter infers (the justification names the invariant the
    analysis cannot see, e.g. the compact protocol's depth cap).

Class qualnames are canonicalized to the ``repro.`` namespace from the
path below the scan root, so fixture trees (rooted anywhere) interoperate
with ``from repro.runtime.node import Process`` imports.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

#: Packages whose protocol classes get the FLOW/COM/TAINT passes.
FLOW_PACKAGES = ("core", "agreement", "avalanche", "compact", "fullinfo")

#: Modules indexed for inheritance/binding resolution only (never linted).
SUPPORT_MODULES = ("runtime/node.py",)

#: The inheritance roots that make a class a certified protocol.
PROCESS_ROOT = "repro.runtime.node.Process"
AUTOMATON_ROOT = "repro.core.automaton.AutomatonProtocol"

#: Sanitizers recognized project-wide without a per-module declaration.
GLOBAL_SANITIZERS = ("eig_byzantine_decision",)


@dataclasses.dataclass
class BoundDecl:
    """One parsed ``MESSAGE_BOUNDS`` entry."""

    bound: str
    justification: str
    line: int


@dataclasses.dataclass
class SanitizerDecl:
    """One parsed ``TAINT_SANITIZERS`` entry."""

    justification: str
    line: int


@dataclasses.dataclass
class ClassInfo:
    """One class definition plus its import-resolved base names."""

    name: str
    qualname: str
    module: "ModuleInfo"
    node: ast.ClassDef
    bases: List[str]
    methods: Dict[str, ast.FunctionDef] = dataclasses.field(
        default_factory=dict
    )

    def method(self, name: str) -> Optional[ast.FunctionDef]:
        """The method ``name`` defined directly on this class."""
        return self.methods.get(name)


@dataclasses.dataclass
class ModuleInfo:
    """One parsed module: AST, imports, classes, declarations."""

    path: pathlib.Path
    relative: str
    qualname: str
    tree: ast.Module
    imports: Dict[str, str] = dataclasses.field(default_factory=dict)
    classes: Dict[str, ClassInfo] = dataclasses.field(default_factory=dict)
    functions: Dict[str, ast.FunctionDef] = dataclasses.field(
        default_factory=dict
    )
    sanitizers: Dict[str, SanitizerDecl] = dataclasses.field(
        default_factory=dict
    )
    bounds: Dict[str, BoundDecl] = dataclasses.field(default_factory=dict)
    malformed: List[Tuple[str, int, str]] = dataclasses.field(
        default_factory=list
    )

    def sanitizer_names(self) -> FrozenSet[str]:
        """Bare terminal names declared sanitizers in this module."""
        names = {key.split(".")[-1] for key in self.sanitizers}
        names.update(GLOBAL_SANITIZERS)
        return frozenset(names)


def _resolve_import_chain(
    module: ModuleInfo, chain: List[str]
) -> Optional[str]:
    """``["node", "Process"]`` -> ``"repro.runtime.node.Process"``."""
    if not chain:
        return None
    root = module.imports.get(chain[0])
    if root is None:
        return None
    return ".".join([root] + chain[1:])


def _parse_imports(tree: ast.Module) -> Dict[str, str]:
    imports: Dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                imports[alias.asname or alias.name.split(".")[0]] = (
                    alias.name if alias.asname else alias.name.split(".")[0]
                )
        elif isinstance(node, ast.ImportFrom) and node.module:
            for alias in node.names:
                imports[alias.asname or alias.name] = (
                    f"{node.module}.{alias.name}"
                )
    return imports


def _declaration_dict(
    module: ModuleInfo, name: str
) -> Optional[ast.Dict]:
    for node in module.tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if isinstance(target, ast.Name) and target.id == name:
                if isinstance(value, ast.Dict):
                    return value
                module.malformed.append(
                    (name, node.lineno, f"{name} must be a dict literal")
                )
    return None


def _parse_sanitizers(module: ModuleInfo) -> None:
    literal = _declaration_dict(module, "TAINT_SANITIZERS")
    if literal is None:
        return
    for key, value in zip(literal.keys, literal.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            module.malformed.append(
                ("TAINT_SANITIZERS", literal.lineno, "non-string key")
            )
            continue
        line = key.lineno
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            module.sanitizers[key.value] = SanitizerDecl(value.value, line)
        else:
            module.sanitizers[key.value] = SanitizerDecl("", line)


def _parse_bounds(module: ModuleInfo) -> None:
    literal = _declaration_dict(module, "MESSAGE_BOUNDS")
    if literal is None:
        return
    for key, value in zip(literal.keys, literal.values):
        if not (
            isinstance(key, ast.Constant) and isinstance(key.value, str)
        ):
            module.malformed.append(
                ("MESSAGE_BOUNDS", literal.lineno, "non-string key")
            )
            continue
        line = key.lineno
        if isinstance(value, ast.Constant) and isinstance(value.value, str):
            module.bounds[key.value] = BoundDecl(value.value, "", line)
        elif (
            isinstance(value, ast.Tuple)
            and len(value.elts) == 2
            and all(
                isinstance(elt, ast.Constant) and isinstance(elt.value, str)
                for elt in value.elts
            )
        ):
            bound = value.elts[0]
            justification = value.elts[1]
            assert isinstance(bound, ast.Constant)
            assert isinstance(justification, ast.Constant)
            module.bounds[key.value] = BoundDecl(
                str(bound.value), str(justification.value), line
            )
        else:
            module.bounds[key.value] = BoundDecl("", "", line)
            module.malformed.append(
                (
                    "MESSAGE_BOUNDS",
                    line,
                    f"entry {key.value!r} must map to a bound string or "
                    "a (bound, justification) tuple of strings",
                )
            )


def _index_module(
    path: pathlib.Path, relative: str, qualname: str
) -> ModuleInfo:
    tree = ast.parse(path.read_text(), filename=str(path))
    module = ModuleInfo(
        path=path, relative=relative, qualname=qualname, tree=tree
    )
    module.imports = _parse_imports(tree)
    for node in tree.body:
        if isinstance(node, ast.FunctionDef):
            module.functions[node.name] = node
        elif isinstance(node, ast.ClassDef):
            bases: List[str] = []
            for base in node.bases:
                if isinstance(base, ast.Name):
                    if base.id in module.imports:
                        bases.append(module.imports[base.id])
                    else:
                        bases.append(f"{qualname}.{base.id}")
                elif isinstance(base, ast.Attribute):
                    chain: List[str] = []
                    current: ast.expr = base
                    while isinstance(current, ast.Attribute):
                        chain.append(current.attr)
                        current = current.value
                    if isinstance(current, ast.Name):
                        chain.append(current.id)
                        chain.reverse()
                        resolved = _resolve_import_chain(module, chain)
                        bases.append(resolved or ".".join(chain))
            info = ClassInfo(
                name=node.name,
                qualname=f"{qualname}.{node.name}",
                module=module,
                node=node,
                bases=bases,
            )
            for child in node.body:
                if isinstance(child, ast.FunctionDef):
                    info.methods[child.name] = child
            module.classes[node.name] = info
    _parse_sanitizers(module)
    _parse_bounds(module)
    return module


class ProjectIndex:
    """Every indexed module and class, with inheritance resolution."""

    def __init__(self, package_root: pathlib.Path):
        self.package_root = package_root
        self.prefix = package_root.name
        self.modules: Dict[str, ModuleInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        self.linted: List[ModuleInfo] = []
        for package in FLOW_PACKAGES:
            directory = package_root / package
            if not directory.is_dir():
                continue
            for path in sorted(directory.rglob("*.py")):
                module = self._add(path)
                if module is not None:
                    self.linted.append(module)
        for support in SUPPORT_MODULES:
            path = package_root / support
            if path.is_file():
                self._add(path)

    def _add(self, path: pathlib.Path) -> Optional[ModuleInfo]:
        subpath = path.relative_to(self.package_root).as_posix()
        relative = f"{self.prefix}/{subpath}"
        qualname = "repro." + subpath[: -len(".py")].replace("/", ".")
        qualname = qualname.replace(".__init__", "")
        try:
            module = _index_module(path, relative, qualname)
        except SyntaxError:
            return None
        self.modules[relative] = module
        for info in module.classes.values():
            self.classes[info.qualname] = info
        return module

    # -- inheritance --------------------------------------------------------

    def is_subclass(self, info: ClassInfo, root: str) -> bool:
        """Whether ``info`` transitively derives from qualname ``root``."""
        seen: Set[str] = set()
        frontier = list(info.bases)
        while frontier:
            base = frontier.pop()
            if base in seen:
                continue
            seen.add(base)
            if base == root:
                return True
            parent = self.classes.get(base)
            if parent is not None:
                frontier.extend(parent.bases)
        return False

    def mro(self, info: ClassInfo) -> List[ClassInfo]:
        """``info`` plus every indexed ancestor, nearest first."""
        out: List[ClassInfo] = []
        seen: Set[str] = set()
        frontier = [info]
        while frontier:
            current = frontier.pop(0)
            if current.qualname in seen:
                continue
            seen.add(current.qualname)
            out.append(current)
            for base in current.bases:
                parent = self.classes.get(base)
                if parent is not None:
                    frontier.append(parent)
        return out

    def find_method(
        self, info: ClassInfo, name: str
    ) -> Optional[Tuple[ClassInfo, ast.FunctionDef]]:
        """``name`` resolved along the indexed inheritance chain."""
        for cls in self.mro(info):
            method = cls.method(name)
            if method is not None:
                return cls, method
        return None

    def resolve_class(
        self, module: ModuleInfo, func: ast.expr
    ) -> Optional[ClassInfo]:
        """The ClassInfo a constructor expression refers to, if indexed."""
        name: Optional[str] = None
        if isinstance(func, ast.Name):
            name = func.id
        elif isinstance(func, ast.Attribute):
            name = func.attr
        if name is None:
            return None
        if name in module.classes:
            return module.classes[name]
        qualified = module.imports.get(name)
        if qualified is not None and qualified in self.classes:
            return self.classes[qualified]
        # Same class name anywhere in the indexed tree (factories often
        # construct classes imported under ``if TYPE_CHECKING`` guards).
        candidates = [
            info
            for info in self.classes.values()
            if info.name == name
        ]
        if len(candidates) == 1:
            return candidates[0]
        return None

    # -- certified protocols -------------------------------------------------

    def certified(self) -> List[ClassInfo]:
        """Every protocol class the certificate covers, sorted.

        A class is certified when it is a concrete :class:`Process`
        subclass (defines or inherits an ``outgoing`` implementation
        from an indexed ancestor) or an ``AutomatonProtocol`` subclass
        defining ``message``.
        """
        out: List[ClassInfo] = []
        for info in self.classes.values():
            if info.module not in self.linted:
                continue
            if self.is_subclass(info, PROCESS_ROOT):
                found = self.find_method(info, "outgoing")
                if found is not None and not _is_abstract(found[1]):
                    out.append(info)
            elif self.is_subclass(info, AUTOMATON_ROOT):
                found = self.find_method(info, "message")
                if found is not None and not _is_abstract(found[1]):
                    out.append(info)
        return sorted(out, key=lambda info: info.qualname)

    def kind_of(self, info: ClassInfo) -> str:
        """``"process"`` or ``"automaton"`` for a certified class."""
        if self.is_subclass(info, PROCESS_ROOT):
            return "process"
        return "automaton"


def _is_abstract(method: ast.FunctionDef) -> bool:
    for decorator in method.decorator_list:
        name = None
        if isinstance(decorator, ast.Name):
            name = decorator.id
        elif isinstance(decorator, ast.Attribute):
            name = decorator.attr
        if name in ("abstractmethod", "abstractproperty"):
            return True
    body = [
        stmt
        for stmt in method.body
        if not (
            isinstance(stmt, ast.Expr)
            and isinstance(stmt.value, ast.Constant)
        )
    ]
    return len(body) == 1 and isinstance(body[0], ast.Raise)
