"""Pass orchestration: discover files, run passes, apply the baseline.

The scanned scope is deliberately the *protocol* packages — ``core``,
``agreement``, ``avalanche``, ``compact``, ``fullinfo`` — plus the
kernel (``arrays``) and the observability subsystem (``obs``, whose
event logs make determinism claims of their own), because those
implement the objects the paper's theorems quantify over.  The
runtime (network, metering, checkpointing) legitimately does I/O and
is linted only by the general toolchain (ruff/mypy), not by protolint.
"""

from __future__ import annotations

import dataclasses
import pathlib
from typing import List, Optional

from repro.statics.baseline import Baseline, Suppression
from repro.statics.contracts import run_contract_pass
from repro.statics.determinism import run_determinism_pass
from repro.statics.findings import Finding
from repro.statics.flow import run_flow_pass
from repro.statics.purity import run_purity_pass

#: The packages whose files get the determinism and purity passes.
#: ``arrays`` joined when the hash-consing store landed: interning is
#: observationally pure and must stay that way (canonical nodes are
#: compared and cached across processes), so its module-level shared
#: registry carries a ``PURITY_EXEMPT`` justification rather than an
#: exclusion from scanning.  ``obs`` joined with the observability
#: subsystem: its records feed determinism claims (diffable event
#: logs), so the same bans apply to it — with one carve-out below.
PROTOCOL_PACKAGES = (
    "arrays", "core", "agreement", "avalanche", "compact", "fullinfo",
    "fuzz", "obs",
)

#: Modules whose entry points are replayed *outside* the calling
#: process (forked sweep-pool workers) — the process-level analogue of
#: the Theorem 2 replay that motivates the purity pass.  They get the
#: purity pass over every module-level function; structural impurities
#: (fork-pool context globals, the process-wide observer slot) are
#: exempted in-module via a justified ``PURITY_EXEMPT`` declaration
#: rather than ad-hoc markers.
WORKER_MODULES = (
    "analysis/parallel.py", "arrays/flat.py", "arrays/persist.py",
    "arrays/store.py", "fuzz/campaign.py", "obs/core.py",
)

#: The one sanctioned wall-clock module.  Timing spans are explicitly
#: nondeterministic (docs/observability.md documents the contract:
#: span data never enters an event log's deterministic section), so
#: this module alone may import :mod:`time`; the determinism pass
#: still scans every other ``obs`` file, keeping the clock from
#: leaking into the event schema.
CLOCK_MODULES = ("obs/spans.py",)


@dataclasses.dataclass
class LintResult:
    """Everything one lint run produced.

    ``findings`` are actionable (unsuppressed); ``suppressed`` matched
    a baseline entry; ``unused_suppressions`` are baseline entries
    that matched nothing and should be deleted.
    """

    findings: List[Finding]
    suppressed: List[Finding]
    unused_suppressions: List[Suppression]
    stale_suppressions: List[str] = dataclasses.field(default_factory=list)

    @property
    def exit_code(self) -> int:
        """0 when clean; 1 when any unsuppressed finding exists."""
        return 1 if self.findings else 0


def default_package_root() -> pathlib.Path:
    """The installed ``repro`` package directory (the default scan root)."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def collect_findings(package_root: pathlib.Path) -> List[Finding]:
    """Run every pass over the tree rooted at ``package_root``."""
    findings: List[Finding] = []
    prefix = package_root.name
    worker_paths = {package_root / module for module in WORKER_MODULES}
    clock_paths = {package_root / module for module in CLOCK_MODULES}
    for package in PROTOCOL_PACKAGES:
        directory = package_root / package
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            relative = f"{prefix}/{path.relative_to(package_root).as_posix()}"
            source = path.read_text()
            if path not in clock_paths:
                findings.extend(run_determinism_pass(source, relative))
            if path in worker_paths:
                # Checked below in the stricter all-functions mode; the
                # default-mode pass would report its (live) exemptions
                # as dead entries.
                continue
            findings.extend(run_purity_pass(source, relative))
    for module in WORKER_MODULES:
        path = package_root / module
        if not path.is_file():
            continue
        relative = f"{prefix}/{module}"
        findings.extend(
            run_purity_pass(path.read_text(), relative, all_functions=True)
        )
    findings.extend(run_contract_pass(package_root))
    findings.extend(run_flow_pass(package_root))
    return sorted(findings)


def lint_tree(
    package_root: Optional[pathlib.Path] = None,
    baseline: Optional[Baseline] = None,
) -> LintResult:
    """Lint ``package_root`` (default: the installed ``repro`` package)."""
    root = package_root if package_root is not None else default_package_root()
    if not root.is_dir():
        raise FileNotFoundError(f"lint root {root} is not a directory")
    baseline = baseline if baseline is not None else Baseline()
    actionable: List[Finding] = []
    suppressed: List[Finding] = []
    for finding in collect_findings(root):
        if baseline.match(finding) is not None:
            suppressed.append(finding)
        else:
            actionable.append(finding)
    return LintResult(
        findings=actionable,
        suppressed=suppressed,
        unused_suppressions=baseline.unused(),
        stale_suppressions=list(baseline.stale),
    )


def find_default_baseline(
    package_root: pathlib.Path,
) -> Optional[pathlib.Path]:
    """Locate ``tools/lint_baseline.json`` near the tree being linted.

    Checked in order: the current working directory's ``tools/``
    (developer runs from the repo root), then the checkout the package
    lives in (``package_root/../../tools``, i.e. ``src/repro`` ->
    repo root).  Returns ``None`` when neither exists.
    """
    candidates = [
        pathlib.Path.cwd() / "tools" / "lint_baseline.json",
        package_root.parent.parent / "tools" / "lint_baseline.json",
    ]
    for candidate in candidates:
        if candidate.is_file():
            return candidate
    return None
