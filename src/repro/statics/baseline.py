"""Baseline / suppression file handling.

``tools/lint_baseline.json`` records the findings the repository has
deliberately accepted, each with a one-line justification.  Entries
match on ``(rule, path, symbol)`` — not line numbers — so unrelated
edits to a file do not invalidate them, and every entry must carry a
non-empty justification: an unexplained suppression is itself a
process violation.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
from typing import Dict, Iterable, List, Optional

from repro.statics.findings import Finding
from repro.statics.rules import RULES

BASELINE_VERSION = 1


def normalize_path(path: str) -> str:
    """Repo-relative POSIX form of a baseline or finding path.

    Baselines written on Windows (backslashes), from the repo root
    (``src/repro/...``), or with a leading ``./`` all normalize to the
    ``repro/...`` form findings use, so the same baseline file matches
    on every platform and from every working directory.
    """
    normalized = path.replace("\\", "/")
    while normalized.startswith("./"):
        normalized = normalized[2:]
    if normalized.startswith("src/repro/"):
        normalized = normalized[len("src/") :]
    return normalized


@dataclasses.dataclass(frozen=True)
class Suppression:
    """One accepted finding: rule + location identity + justification."""

    rule: str
    path: str
    symbol: str
    justification: str

    @property
    def key(self) -> str:
        """Identity matching :attr:`Finding.suppression_key`."""
        return f"{self.rule}:{self.path}:{self.symbol}"


class Baseline:
    """The set of accepted findings, with bookkeeping for staleness."""

    def __init__(
        self,
        suppressions: Iterable[Suppression] = (),
        stale: Iterable[str] = (),
    ):
        self._by_key: Dict[str, Suppression] = {}
        for suppression in suppressions:
            self._by_key[suppression.key] = suppression
        self._used: Dict[str, bool] = {key: False for key in self._by_key}
        #: Warnings about entries that no longer parse against the
        #: current rule set — carried (not raised) so an old baseline
        #: keeps working across rule renames; see ``load``.
        self.stale: List[str] = list(stale)

    @classmethod
    def load(cls, path: pathlib.Path) -> "Baseline":
        """Parse a baseline file, validating rule ids and justifications.

        Entries naming a rule id the current protolint does not know
        (typically written by a newer or older checkout) are skipped
        with a warning on :attr:`stale` rather than rejected outright:
        a stale entry cannot suppress anything, but it should not
        brick every lint run until someone edits the file.  A missing
        justification is still a hard error — that is a process
        violation, not staleness.
        """
        data = json.loads(path.read_text())
        if data.get("version") != BASELINE_VERSION:
            raise ValueError(
                f"{path}: unsupported baseline version {data.get('version')!r}"
            )
        suppressions = []
        stale: List[str] = []
        for raw in data.get("suppressions", []):
            suppression = Suppression(
                rule=raw["rule"],
                path=normalize_path(raw["path"]),
                symbol=raw["symbol"],
                justification=raw.get("justification", ""),
            )
            if suppression.rule not in RULES:
                stale.append(
                    f"{suppression.key}: unknown rule id "
                    f"{suppression.rule!r} (stale entry ignored)"
                )
                continue
            if not suppression.justification.strip():
                raise ValueError(
                    f"{path}: suppression {suppression.key} has no "
                    "justification"
                )
            suppressions.append(suppression)
        return cls(suppressions, stale=stale)

    def match(self, finding: Finding) -> Optional[Suppression]:
        """The suppression covering ``finding``, marking it used."""
        suppression = self._by_key.get(finding.suppression_key)
        if suppression is not None:
            self._used[suppression.key] = True
        return suppression

    def unused(self) -> List[Suppression]:
        """Entries that matched nothing — candidates for deletion."""
        return [
            self._by_key[key]
            for key in sorted(self._by_key)
            if not self._used[key]
        ]

    def justification_for(self, finding: Finding) -> Optional[str]:
        """The recorded justification for ``finding``'s identity, if any."""
        suppression = self._by_key.get(finding.suppression_key)
        return suppression.justification if suppression else None


def write_baseline(
    path: pathlib.Path,
    findings: Iterable[Finding],
    previous: Optional[Baseline] = None,
) -> None:
    """Write a baseline accepting ``findings``.

    Justifications already recorded for a finding's identity are
    preserved; new entries get a ``TODO`` placeholder for a human to
    replace in review — suppressing is deliberate, not automatic.
    """
    entries = []
    seen = set()
    for finding in sorted(findings):
        if finding.suppression_key in seen:
            continue
        seen.add(finding.suppression_key)
        justification = None
        if previous is not None:
            justification = previous.justification_for(finding)
        entries.append(
            {
                "rule": finding.rule,
                "path": finding.path,
                "symbol": finding.symbol,
                "justification": justification
                or "TODO: justify this suppression",
            }
        )
    path.write_text(
        json.dumps(
            {"version": BASELINE_VERSION, "suppressions": entries}, indent=2
        )
        + "\n"
    )
