"""Text and JSON rendering of lint results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from repro.statics.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.statics.runner import LintResult

#: Bumped whenever the JSON schema changes shape; consumers should
#: reject versions they do not know.
JSON_SCHEMA_VERSION = 1


def render_text(result: "LintResult") -> str:
    """Human-readable report: one ``path:line:col rule message`` per line."""
    lines = []
    for finding in result.findings:
        title = RULES[finding.rule].title if finding.rule in RULES else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{title}] {finding.message} "
            f"(in {finding.symbol})"
        )
    for suppression in result.unused_suppressions:
        lines.append(
            f"warning: baseline entry {suppression.key} matched nothing "
            "— delete it"
        )
    count = len(result.findings)
    suppressed = len(result.suppressed)
    if count:
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"({suppressed} suppressed by baseline)"
        )
    else:
        lines.append(f"clean ({suppressed} suppressed by baseline)")
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report — see ``docs/statics.md`` for the schema."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "findings": [finding.to_json() for finding in result.findings],
            "suppressed": [
                finding.to_json() for finding in result.suppressed
            ],
            "unused_suppressions": [
                suppression.key for suppression in result.unused_suppressions
            ],
        },
        indent=2,
    )
