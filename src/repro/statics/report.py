"""Text, JSON, and SARIF rendering of lint results."""

from __future__ import annotations

import json
from typing import TYPE_CHECKING, Any, Dict, List

from repro.statics.rules import RULES

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for typing only
    from repro.statics.findings import Finding
    from repro.statics.runner import LintResult

#: Bumped whenever the JSON schema changes shape; consumers should
#: reject versions they do not know.  Version 2 added
#: ``stale_suppressions`` (baseline entries naming unknown rule ids,
#: carried as warnings instead of load errors).
JSON_SCHEMA_VERSION = 2

#: The SARIF spec version the ``sarif`` format emits.
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = (
    "https://raw.githubusercontent.com/oasis-tcs/sarif-spec/master/"
    "Schemata/sarif-schema-2.1.0.json"
)


def render_text(result: "LintResult") -> str:
    """Human-readable report: one ``path:line:col rule message`` per line."""
    lines = []
    for finding in result.findings:
        title = RULES[finding.rule].title if finding.rule in RULES else ""
        lines.append(
            f"{finding.path}:{finding.line}:{finding.col}: "
            f"{finding.rule} [{title}] {finding.message} "
            f"(in {finding.symbol})"
        )
    for suppression in result.unused_suppressions:
        lines.append(
            f"warning: baseline entry {suppression.key} matched nothing "
            "— delete it"
        )
    for stale in result.stale_suppressions:
        lines.append(f"warning: stale baseline entry {stale}")
    count = len(result.findings)
    suppressed = len(result.suppressed)
    if count:
        lines.append(
            f"{count} finding{'s' if count != 1 else ''} "
            f"({suppressed} suppressed by baseline)"
        )
    else:
        lines.append(f"clean ({suppressed} suppressed by baseline)")
    return "\n".join(lines)


def render_json(result: "LintResult") -> str:
    """Machine-readable report — see ``docs/statics.md`` for the schema."""
    return json.dumps(
        {
            "version": JSON_SCHEMA_VERSION,
            "findings": [finding.to_json() for finding in result.findings],
            "suppressed": [
                finding.to_json() for finding in result.suppressed
            ],
            "unused_suppressions": [
                suppression.key for suppression in result.unused_suppressions
            ],
            "stale_suppressions": list(result.stale_suppressions),
        },
        indent=2,
    )


def _sarif_result(finding: "Finding", suppressed: bool) -> Dict[str, Any]:
    result: Dict[str, Any] = {
        "ruleId": finding.rule,
        "level": "error",
        "message": {"text": f"{finding.message} (in {finding.symbol})"},
        "locations": [
            {
                "physicalLocation": {
                    "artifactLocation": {"uri": finding.path},
                    "region": {
                        "startLine": max(finding.line, 1),
                        "startColumn": finding.col + 1,
                    },
                }
            }
        ],
    }
    if suppressed:
        result["suppressions"] = [{"kind": "external"}]
    return result


def render_sarif(result: "LintResult") -> str:
    """SARIF 2.1.0 report, for code-scanning upload and CI artifacts.

    Baseline-suppressed findings are included with an ``external``
    suppression (the SARIF term for "accepted outside the source"),
    so scanners show them as reviewed rather than new.
    """
    rules: List[Dict[str, Any]] = [
        {
            "id": rule.id,
            "name": rule.title,
            "shortDescription": {"text": rule.title},
            "fullDescription": {"text": rule.rationale},
            "defaultConfiguration": {"level": "error"},
        }
        for rule in sorted(RULES.values(), key=lambda rule: rule.id)
    ]
    results = [
        _sarif_result(finding, suppressed=False)
        for finding in result.findings
    ]
    results.extend(
        _sarif_result(finding, suppressed=True)
        for finding in result.suppressed
    )
    return json.dumps(
        {
            "$schema": SARIF_SCHEMA,
            "version": SARIF_VERSION,
            "runs": [
                {
                    "tool": {
                        "driver": {
                            "name": "protolint",
                            "informationUri": (
                                "https://example.invalid/docs/statics.md"
                            ),
                            "rules": rules,
                        }
                    },
                    "results": results,
                }
            ],
        },
        indent=2,
    )
