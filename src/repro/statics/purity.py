"""The purity pass: automaton functions must be functions.

Section 3.1 defines a protocol by four *mathematical* functions —
``mu_pq : Q -> L``, ``delta_p : L^n -> Q``, ``gamma_p : Q -> {BOTTOM} u V``
and the initial-state map.  Every simulation result in the paper
(Lemma 1's pointwise correspondence, Theorem 2's reconstruction, the
Theorem 5 transform) replays them in a context the original never ran
in, so an implementation that performs I/O, mutates shared state, or
leaks state between calls through a mutable default argument is
formally meaningless even when its single-run tests pass.

The pass inspects (a) every ``AutomatonProtocol`` subclass's
implementations of the four functions (plus the message-coercion
hooks, which Theorem 2 also replays) and (b) every ``*_factory``
function in the protocol packages — the constructors the catalog
registers, which must build processes from their arguments alone.
Worker modules (see :data:`repro.statics.runner.WORKER_MODULES`) are
checked in ``all_functions`` mode: their entry points are replayed in
forked pool workers, the process-level analogue of Theorem 2's replay.

A module may exempt specific functions by declaring a module-level
``PURITY_EXEMPT = {"symbol": "justification", ...}`` dict — the
sanctioned, reviewable alternative to per-line ``# noqa`` markers for
code whose impurity is structural (e.g. fork-pool worker plumbing that
must publish context through a module global).  Every entry needs a
non-empty justification and must exempt a symbol the pass actually
checks; invalid or dead entries are themselves findings (PUR005).
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.statics.findings import Finding
from repro.statics.rules import rule
from repro.statics.visitor import ScopedVisitor, attribute_chain

#: The AutomatonProtocol methods that Theorem 2 replays.
AUTOMATON_METHODS: Set[str] = {
    "initial_state",
    "message",
    "transition",
    "decision",
    "coerce_message",
    "default_message",
}

#: All four functions receive state/messages as arguments and return
#: their result; none may write ``self`` — one ``AutomatonProtocol``
#: instance is shared by all n processors (see ``automaton_factory``),
#: so ``self``-mutation couples processors outside the channels.
READ_ONLY_METHODS: Set[str] = set(AUTOMATON_METHODS)

_IO_ROOTS: Set[str] = {
    "sys",
    "subprocess",
    "socket",
    "logging",
    "shutil",
    "io",
    "requests",
    "urllib",
}
_IO_BUILTINS: Set[str] = {"print", "open", "input", "breakpoint", "exec", "eval"}
_OS_PURE_ATTRS: Set[str] = {"path"}  # os.path.* is pure path algebra

_MUTATING_METHODS: Set[str] = {
    "append",
    "add",
    "update",
    "extend",
    "remove",
    "discard",
    "clear",
    "pop",
    "popitem",
    "setdefault",
    "insert",
    "sort",
    "reverse",
}

PUR001 = rule(
    "PUR001",
    "purity",
    "I/O inside an automaton function or factory",
    "mu/delta/gamma are replayed by Theorem 2 in contexts where their "
    "side effects would repeat or be lost; they must compute, not act",
)
PUR002 = rule(
    "PUR002",
    "purity",
    "global state mutation",
    "shared mutable state couples processors outside the message "
    "channels, breaking the independence Lemma 1's correspondence needs",
)
PUR003 = rule(
    "PUR003",
    "purity",
    "mutable default argument",
    "a mutable default is shared state across calls and processors — "
    "hidden memory the Section 3.1 state set Q does not contain",
)
PUR004 = rule(
    "PUR004",
    "purity",
    "state mutation in an automaton function",
    "mu/delta/gamma take state as an argument and return their result; "
    "one protocol object serves all n processors, so writing self.* "
    "couples processors outside the message channels",
)
PUR005 = rule(
    "PUR005",
    "purity",
    "invalid purity exemption",
    "PURITY_EXEMPT entries are the reviewable alternative to ad-hoc "
    "noqa markers; an entry without a justification, or naming no "
    "symbol this pass checks, documents nothing and must be fixed or "
    "removed",
)

#: The module-level declaration the pass honours.
EXEMPT_DECLARATION = "PURITY_EXEMPT"


def _mutable_default(default: ast.AST) -> bool:
    if isinstance(default, (ast.List, ast.Dict, ast.Set)):
        return True
    return (
        isinstance(default, ast.Call)
        and isinstance(default.func, ast.Name)
        and default.func.id in ("list", "dict", "set", "bytearray")
    )


def _module_level_names(tree: ast.Module) -> Set[str]:
    names: Set[str] = set()
    for node in tree.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                for name in ast.walk(target):
                    if isinstance(name, ast.Name):
                        names.add(name.id)
        elif isinstance(node, ast.AnnAssign) and isinstance(
            node.target, ast.Name
        ):
            names.add(node.target.id)
    return names


class _FunctionChecker(ScopedVisitor):
    """Checks one automaton method or factory body for impurity."""

    def __init__(
        self,
        path: str,
        module_names: Set[str],
        read_only_self: bool,
    ):
        super().__init__(path)
        self.module_names = module_names
        self.read_only_self = read_only_self
        self._shadowed: Set[str] = set()

    def check(self, node: ast.AST, scope: Sequence[str]) -> List[Finding]:
        self._scope = list(scope)
        self._shadowed = _parameter_names(node)
        self.generic_visit(node)
        return self.findings

    # -- I/O ---------------------------------------------------------------

    def visit_Call(self, node: ast.Call) -> None:
        if isinstance(node.func, ast.Name) and node.func.id in _IO_BUILTINS:
            self.add(PUR001, node, f"call to {node.func.id}(...)")
        chain = attribute_chain(node.func)
        if chain is not None and chain[0] not in self._shadowed:
            if chain[0] in _IO_ROOTS:
                self.add(PUR001, node, f"call to {'.'.join(chain)}(...)")
            elif (
                chain[0] == "os"
                and len(chain) >= 2
                and chain[1] not in _OS_PURE_ATTRS
            ):
                self.add(PUR001, node, f"call to {'.'.join(chain)}(...)")
            elif (
                chain[0] in self.module_names
                and len(chain) >= 2
                and chain[-1] in _MUTATING_METHODS
            ):
                self.add(
                    PUR002,
                    node,
                    f"mutating call {'.'.join(chain)}(...) on module-level "
                    f"state {chain[0]!r}",
                )
        self._check_self_mutation_call(node)
        self.generic_visit(node)

    # -- global mutation ----------------------------------------------------

    def visit_Global(self, node: ast.Global) -> None:
        self.add(
            PUR002, node, f"global statement ({', '.join(node.names)})"
        )

    def visit_Nonlocal(self, node: ast.Nonlocal) -> None:
        self.add(
            PUR002, node, f"nonlocal statement ({', '.join(node.names)})"
        )

    def _store_root(self, target: ast.AST) -> Optional[List[str]]:
        while isinstance(target, (ast.Subscript, ast.Attribute)):
            target = target.value
        chain = attribute_chain(target)
        if chain is None and isinstance(target, ast.Name):
            return [target.id]
        return chain

    def _check_store(self, target: ast.AST, node: ast.AST) -> None:
        if not isinstance(target, (ast.Subscript, ast.Attribute)):
            return
        root = self._store_root(target)
        if root is None or root[0] in self._shadowed:
            return
        if root[0] in self.module_names:
            self.add(
                PUR002,
                node,
                f"assignment into module-level state {root[0]!r}",
            )
        elif root[0] == "self" and self.read_only_self:
            self.add(
                PUR004,
                node,
                "assignment to self.* inside an automaton function (the "
                "protocol object is shared by all processors)",
            )

    def _check_self_mutation_call(self, node: ast.Call) -> None:
        if not self.read_only_self:
            return
        chain = attribute_chain(node.func)
        if (
            chain is not None
            and chain[0] == "self"
            and len(chain) >= 3
            and chain[-1] in _MUTATING_METHODS
        ):
            self.add(
                PUR004,
                node,
                f"mutating call {'.'.join(chain)}(...) inside an "
                "automaton function (the protocol object is shared)",
            )

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            self._check_store(target, node)
        self.generic_visit(node)

    def visit_AugAssign(self, node: ast.AugAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    def visit_AnnAssign(self, node: ast.AnnAssign) -> None:
        self._check_store(node.target, node)
        self.generic_visit(node)

    # -- defaults (nested defs keep their enclosing symbol) -----------------

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        _check_defaults(self, node)
        super().visit_FunctionDef(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        _check_defaults(self, node)
        super().visit_AsyncFunctionDef(node)

    def visit_Lambda(self, node: ast.Lambda) -> None:
        _check_defaults(self, node)
        self.generic_visit(node)


def _parameter_names(node: ast.AST) -> Set[str]:
    names: Set[str] = set()
    args = getattr(node, "args", None)
    if args is None:
        return names
    for arg in (
        list(args.posonlyargs)
        + list(args.args)
        + list(args.kwonlyargs)
        + ([args.vararg] if args.vararg else [])
        + ([args.kwarg] if args.kwarg else [])
    ):
        names.add(arg.arg)
    names.discard("self")
    return names


def _check_defaults(checker: _FunctionChecker, node: ast.AST) -> None:
    args = getattr(node, "args", None)
    if args is None:
        return
    for default in list(args.defaults) + [
        d for d in args.kw_defaults if d is not None
    ]:
        if _mutable_default(default):
            checker.add(
                PUR003,
                default,
                "mutable default argument (shared across every call)",
            )


def _automaton_classes(tree: ast.Module) -> List[ast.ClassDef]:
    """Classes deriving (possibly transitively, within this file) from
    ``AutomatonProtocol``."""
    by_name = {
        node.name: node
        for node in tree.body
        if isinstance(node, ast.ClassDef)
    }
    automaton: Set[str] = set()

    def derives(node: ast.ClassDef, seen: Set[str]) -> bool:
        for base in node.bases:
            chain = attribute_chain(base)
            if chain is None:
                continue
            if chain[-1] == "AutomatonProtocol" or chain[-1] in automaton:
                return True
            local = by_name.get(chain[-1])
            if local is not None and local.name not in seen:
                if derives(local, seen | {local.name}):
                    return True
        return False

    changed = True
    while changed:
        changed = False
        for name, node in by_name.items():
            if name not in automaton and derives(node, {name}):
                automaton.add(name)
                changed = True
    return [by_name[name] for name in by_name if name in automaton]


def _finding(path: str, node: ast.AST, symbol: str, message: str) -> Finding:
    return Finding(
        path=path,
        line=getattr(node, "lineno", 0),
        col=getattr(node, "col_offset", 0),
        rule=PUR005.id,
        symbol=symbol,
        message=message,
    )


def _parse_exemptions(
    tree: ast.Module, path: str
) -> Tuple[Dict[str, ast.AST], List[Finding]]:
    """The module's ``PURITY_EXEMPT`` declaration, validated.

    Returns ``(exemptions, findings)`` where ``exemptions`` maps each
    *well-justified* symbol to the AST node that declared it (for
    dead-entry reporting) and ``findings`` holds PUR005s for
    malformed entries: non-literal declarations, non-string keys, or
    empty/missing justifications.
    """
    exemptions: Dict[str, ast.AST] = {}
    findings: List[Finding] = []
    for node in tree.body:
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        named = any(
            isinstance(target, ast.Name) and target.id == EXEMPT_DECLARATION
            for target in targets
        )
        if not named:
            continue
        if not isinstance(value, ast.Dict):
            findings.append(_finding(
                path, node, "<module>",
                f"{EXEMPT_DECLARATION} must be a literal dict of "
                "symbol -> justification",
            ))
            continue
        for key, justification in zip(value.keys, value.values):
            if not (
                isinstance(key, ast.Constant) and isinstance(key.value, str)
            ):
                findings.append(_finding(
                    path, key if key is not None else node, "<module>",
                    f"{EXEMPT_DECLARATION} keys must be string literals "
                    "naming checked symbols",
                ))
                continue
            symbol = key.value
            justified = (
                isinstance(justification, ast.Constant)
                and isinstance(justification.value, str)
                and justification.value.strip()
            )
            if not justified:
                findings.append(_finding(
                    path, justification, symbol,
                    f"exemption for {symbol!r} has no justification — "
                    "an unexplained suppression is a process violation",
                ))
                continue
            exemptions[symbol] = key
    return exemptions, findings


def run_purity_pass(
    source: str, path: str, all_functions: bool = False
) -> List[Finding]:
    """Lint one file; returns its findings.

    By default only automaton methods and ``*_factory`` constructors
    are checked.  ``all_functions=True`` extends the check to every
    module-level function — used for worker modules, whose entry
    points are replayed in forked pool processes.  Either way, symbols
    named in a valid ``PURITY_EXEMPT`` declaration are skipped.
    """
    tree = ast.parse(source, filename=path)
    module_names = _module_level_names(tree)
    exemptions, findings = _parse_exemptions(tree, path)
    used_exemptions: Set[str] = set()

    def exempted(symbol: str) -> bool:
        if symbol in exemptions:
            used_exemptions.add(symbol)
            return True
        return False

    for cls in _automaton_classes(tree):
        for item in cls.body:
            if not isinstance(item, ast.FunctionDef):
                continue
            if item.name not in AUTOMATON_METHODS:
                continue
            if exempted(f"{cls.name}.{item.name}"):
                continue
            checker = _FunctionChecker(
                path,
                module_names,
                read_only_self=item.name in READ_ONLY_METHODS,
            )
            _check_defaults(checker, item)
            findings.extend(checker.check(item, [cls.name, item.name]))

    for item in tree.body:
        if not isinstance(item, ast.FunctionDef):
            continue
        if not (all_functions or item.name.endswith("_factory")):
            continue
        if exempted(item.name):
            continue
        checker = _FunctionChecker(path, module_names, read_only_self=False)
        _check_defaults(checker, item)
        findings.extend(checker.check(item, [item.name]))

    for symbol, node in exemptions.items():
        if symbol not in used_exemptions:
            findings.append(_finding(
                path, node, symbol,
                f"exemption for {symbol!r} matches no symbol this pass "
                "checks — delete the dead entry",
            ))
    return findings
