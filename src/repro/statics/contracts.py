"""The contract pass: the catalog agrees with the source tree.

``repro.agreement.interfaces.catalog()`` is the coverage contract of
this repository: the conformance sweep in
``tests/integration/test_catalog.py`` runs *every* catalogued protocol
against the full adversary gallery, so a factory that never gets
registered silently opts out of that safety net.  This pass
cross-checks the catalog's AST against the tree without importing or
executing any protocol code:

* every ``*_factory`` in ``agreement/``, ``compact/`` and
  ``avalanche/`` is registered in ``catalog()`` or listed (with a
  justification) in ``CATALOG_EXEMPT``;
* ``CATALOG_EXEMPT`` names real, genuinely unregistered factories;
* every non-randomized entry declares a concrete round bound (the
  sweep cannot bound a run it believes is randomized);
* every entry's ``supports`` predicate encodes a recognizable
  resilience bound (``n >= 3t + 1``, ``n >= 4t + 1``, ...) and the
  module defining the factory states that bound in its docstring, so
  the registered requirement can never drift from the documented one.
"""

from __future__ import annotations

import ast
import dataclasses
import pathlib
import re
from typing import Dict, List, Optional, Set

from repro.statics.findings import Finding
from repro.statics.rules import rule
from repro.statics.visitor import attribute_chain

#: Packages whose top-level ``*_factory`` functions fall under the
#: registration contract.
CONTRACT_PACKAGES = ("agreement", "compact", "avalanche")

#: ``SystemConfig`` helper -> the bound it encodes.
_QUORUM_HELPERS = {
    "requires_byzantine_quorum": "3t + 1",
    "requires_fast_quorum": "4t + 1",
}

CON001 = rule(
    "CON001",
    "contracts",
    "unregistered factory",
    "an uncatalogued protocol skips the catalog-wide conformance "
    "sweep, so nothing checks it against the adversary gallery",
)
CON002 = rule(
    "CON002",
    "contracts",
    "stale or contradictory exemption",
    "CATALOG_EXEMPT must name real, unregistered factories or the "
    "exemption list itself drifts from the tree",
)
CON003 = rule(
    "CON003",
    "contracts",
    "missing round bound",
    "the sweep bounds deterministic runs by entry.rounds(t); a "
    "non-randomized entry without one can loop forever unnoticed",
)
CON004 = rule(
    "CON004",
    "contracts",
    "resilience bound undeclared or undocumented",
    "the paper's results are parameterized by n >= 3t + 1 (or 4t + 1 "
    "for the fast variants); the registered requirement must match "
    "the module's documented bound",
)


@dataclasses.dataclass
class CatalogEntry:
    """The statically extracted shape of one ``ProtocolEntry(...)``."""

    name: str
    line: int
    factories: Set[str]
    rounds_is_none: bool
    randomized: bool
    bound: Optional[str]


def _lambda_factories(
    body: ast.AST, helpers: Dict[str, Set[str]]
) -> Set[str]:
    found: Set[str] = set()
    for node in ast.walk(body):
        if isinstance(node, ast.Name):
            if node.id.endswith("_factory"):
                found.add(node.id)
            elif node.id in helpers:
                found |= helpers[node.id]
        elif isinstance(node, ast.Attribute) and node.attr.endswith(
            "_factory"
        ):
            found.add(node.attr)
    return found


def _classify_bound(supports: ast.expr) -> Optional[str]:
    """The resilience bound a ``supports`` lambda encodes, if recognizable."""
    if not isinstance(supports, ast.Lambda):
        return None
    for node in ast.walk(supports.body):
        if isinstance(node, ast.Call):
            chain = attribute_chain(node.func)
            if chain and chain[-1] in _QUORUM_HELPERS:
                return _QUORUM_HELPERS[chain[-1]]
    # Explicit comparisons: config.n >= c * config.t + 1 (or t + 1).
    for node in ast.walk(supports.body):
        if not isinstance(node, ast.Compare):
            continue
        coefficient = None
        saw_t = False
        for sub in ast.walk(node):
            if (
                isinstance(sub, ast.BinOp)
                and isinstance(sub.op, ast.Mult)
                and isinstance(sub.left, ast.Constant)
                and isinstance(sub.left.value, int)
            ):
                coefficient = sub.left.value
            if isinstance(sub, ast.Attribute) and sub.attr == "t":
                saw_t = True
        if saw_t:
            return f"{coefficient}t + 1" if coefficient else "t + 1"
    return None


def _entry_from_call(
    call: ast.Call, helpers: Dict[str, Set[str]]
) -> Optional[CatalogEntry]:
    keywords = {kw.arg: kw.value for kw in call.keywords if kw.arg}
    name_node = keywords.get("name")
    if not (isinstance(name_node, ast.Constant) and isinstance(
        name_node.value, str
    )):
        return None
    build = keywords.get("build")
    rounds = keywords.get("rounds")
    randomized = keywords.get("randomized")
    supports = keywords.get("supports")
    return CatalogEntry(
        name=name_node.value,
        line=call.lineno,
        factories=(
            _lambda_factories(build, helpers) if build is not None else set()
        ),
        rounds_is_none=(
            isinstance(rounds, ast.Lambda)
            and isinstance(rounds.body, ast.Constant)
            and rounds.body.value is None
        ),
        randomized=(
            isinstance(randomized, ast.Constant)
            and randomized.value is True
        ),
        bound=_classify_bound(supports) if supports is not None else None,
    )


def parse_catalog(source: str) -> List[CatalogEntry]:
    """Extract every ``ProtocolEntry(...)`` from ``interfaces.py`` source."""
    tree = ast.parse(source)
    catalog_def = next(
        (
            node
            for node in tree.body
            if isinstance(node, ast.FunctionDef) and node.name == "catalog"
        ),
        None,
    )
    if catalog_def is None:
        return []
    # Local helpers (def or lambda assignment) may wrap a factory; map
    # one level of indirection: helper name -> factory names inside it.
    helpers: Dict[str, Set[str]] = {}
    for node in catalog_def.body:
        if isinstance(node, ast.FunctionDef):
            helpers[node.name] = _lambda_factories(node, {})
        elif (
            isinstance(node, ast.Assign)
            and len(node.targets) == 1
            and isinstance(node.targets[0], ast.Name)
            and isinstance(node.value, ast.Lambda)
        ):
            helpers[node.targets[0].id] = _lambda_factories(node.value, {})
    entries = []
    for node in ast.walk(catalog_def):
        if (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "ProtocolEntry"
        ):
            entry = _entry_from_call(node, helpers)
            if entry is not None:
                entries.append(entry)
    return entries


def parse_exemptions(source: str) -> Dict[str, str]:
    """The ``CATALOG_EXEMPT`` dict literal from ``interfaces.py`` source."""
    tree = ast.parse(source)
    for node in tree.body:
        targets: List[ast.expr] = []
        value: Optional[ast.expr] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        for target in targets:
            if (
                isinstance(target, ast.Name)
                and target.id == "CATALOG_EXEMPT"
                and isinstance(value, ast.Dict)
            ):
                exempt: Dict[str, str] = {}
                for key, val in zip(value.keys, value.values):
                    if (
                        isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, ast.Constant)
                        and isinstance(val.value, str)
                    ):
                        exempt[key.value] = val.value
                return exempt
    return {}


def tree_factories(package_root: pathlib.Path) -> Dict[str, pathlib.Path]:
    """Every top-level ``*_factory`` def under the contract packages."""
    factories: Dict[str, pathlib.Path] = {}
    for package in CONTRACT_PACKAGES:
        directory = package_root / package
        if not directory.is_dir():
            continue
        for path in sorted(directory.rglob("*.py")):
            tree = ast.parse(path.read_text(), filename=str(path))
            for node in tree.body:
                if isinstance(node, ast.FunctionDef) and node.name.endswith(
                    "_factory"
                ):
                    factories[node.name] = path
    return factories


def _bound_documented(docstring: str, bound: str) -> bool:
    # "3t + 1" matches "3t + 1", "3t+1" and "3 * t + 1"; an explicitly
    # negated mention ("no 3t + 1 bound") does not count.
    coefficient = bound.split("t")[0].strip()
    spaced = coefficient + r"\s*\*?\s*t\s*\+\s*1" if coefficient else r"\bt\s*\+\s*1"
    text = " ".join(docstring.split())
    for match in re.finditer(spaced, text):
        prefix = text[: match.start()].rstrip().lower()
        if prefix.endswith("no") or prefix.endswith("not"):
            continue
        # "43t + 1" must not satisfy a query for "3t + 1".
        if match.start() > 0 and text[match.start() - 1].isdigit():
            continue
        return True
    return False


def run_contract_pass(package_root: pathlib.Path) -> List[Finding]:
    """Cross-check the catalog against the tree rooted at ``package_root``.

    ``package_root`` is the directory of the ``repro`` package itself
    (or a fixture tree of the same shape).  Returns all contract
    findings; an absent ``agreement/interfaces.py`` yields none, so
    fixture trees exercising only the other passes stay valid.
    """
    interfaces_path = package_root / "agreement" / "interfaces.py"
    if not interfaces_path.is_file():
        return []
    prefix = package_root.name
    relative = f"{prefix}/agreement/interfaces.py"
    source = interfaces_path.read_text()
    entries = parse_catalog(source)
    exemptions = parse_exemptions(source)
    factories = tree_factories(package_root)
    registered: Set[str] = set()
    for entry in entries:
        registered |= entry.factories

    findings: List[Finding] = []

    def add(
        rule_obj, line: int, symbol: str, message: str, path: str = relative
    ) -> None:
        findings.append(
            Finding(
                path=path,
                line=line,
                col=0,
                rule=rule_obj.id,
                symbol=symbol,
                message=message,
            )
        )

    for name, path in sorted(factories.items()):
        if name not in registered and name not in exemptions:
            add(
                CON001,
                1,
                name,
                f"{name} (defined in "
                f"{prefix}/{path.relative_to(package_root)}) is neither "
                "registered in catalog() nor exempted in CATALOG_EXEMPT",
                path=f"{prefix}/{path.relative_to(package_root)}",
            )
    for name in sorted(exemptions):
        if name not in factories:
            add(
                CON002,
                1,
                name,
                f"CATALOG_EXEMPT lists {name}, which no contract package "
                "defines",
            )
        elif name in registered:
            add(
                CON002,
                1,
                name,
                f"CATALOG_EXEMPT lists {name}, but catalog() registers it "
                "— remove the stale exemption",
            )

    for entry in entries:
        if entry.rounds_is_none and not entry.randomized:
            add(
                CON003,
                entry.line,
                entry.name,
                f"entry {entry.name!r} is not randomized but declares no "
                "round bound (rounds=lambda t: None)",
            )
        if entry.bound is None:
            add(
                CON004,
                entry.line,
                entry.name,
                f"entry {entry.name!r}: supports predicate does not encode "
                "a recognizable n >= c*t + 1 resilience bound",
            )
            continue
        for factory in sorted(entry.factories):
            module = factories.get(factory)
            if module is None:
                continue
            docstring = (
                ast.get_docstring(ast.parse(module.read_text())) or ""
            )
            if not _bound_documented(docstring, entry.bound):
                add(
                    CON004,
                    entry.line,
                    entry.name,
                    f"entry {entry.name!r} requires n >= {entry.bound} but "
                    f"the docstring of "
                    f"{prefix}/{module.relative_to(package_root)} never "
                    "states that bound",
                )
    return findings
