"""The rule registry: every check has an id, a pass, and a rationale.

Rules are declared where they are implemented (the pass modules) via
the :func:`rule` decorator-style registrar; the registry exists so the
reporters and ``docs/statics.md`` can enumerate them and so unknown
rule ids in the baseline file are rejected instead of silently
matching nothing.
"""

from __future__ import annotations

import dataclasses
from typing import Dict


@dataclasses.dataclass(frozen=True)
class Rule:
    """Metadata for one lint rule.

    ``rationale`` names the part of the paper the rule protects —
    every rule here exists because some theorem assumes the property
    it checks.
    """

    id: str
    pass_name: str
    title: str
    rationale: str


RULES: Dict[str, Rule] = {}


def rule(rule_id: str, pass_name: str, title: str, rationale: str) -> Rule:
    """Register and return a :class:`Rule`; ids must be unique."""
    if rule_id in RULES:
        raise ValueError(f"duplicate rule id {rule_id!r}")
    registered = Rule(rule_id, pass_name, title, rationale)
    RULES[rule_id] = registered
    return registered
