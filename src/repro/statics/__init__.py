"""Protocol-aware static analysis ("protolint").

Coan's construction treats a protocol as a deterministic automaton:
``mu_pq``, ``delta_p`` and ``gamma_p`` are *functions*, and Theorem 2
replays them during reconstruction — so hidden nondeterminism,
wall-clock reads or mutable shared state silently break the formal
guarantees without failing any single-run test.  This package checks
those well-formedness properties by walking the AST, without executing
any protocol:

* :mod:`repro.statics.determinism` — no stray entropy sources, no
  unordered-set iteration; randomness flows through
  :mod:`repro.runtime.rng` (protects Theorem 2's replayability),
* :mod:`repro.statics.purity` — automaton functions and registered
  factories are free of I/O, global mutation and mutable default
  arguments (protects the Section 3.1 formalism),
* :mod:`repro.statics.contracts` — the catalog in
  :mod:`repro.agreement.interfaces` agrees with the source tree
  (protects the conformance sweep's coverage guarantee).

Run it as ``python -m repro lint`` or ``python tools/run_lint.py``;
see ``docs/statics.md`` for the rule reference.
"""

from repro.statics.baseline import Baseline
from repro.statics.contracts import run_contract_pass
from repro.statics.determinism import run_determinism_pass
from repro.statics.findings import Finding
from repro.statics.purity import run_purity_pass
from repro.statics.report import render_json, render_text
from repro.statics.rules import RULES, Rule, rule
from repro.statics.runner import LintResult, lint_tree

__all__ = [
    "Baseline",
    "Finding",
    "LintResult",
    "RULES",
    "Rule",
    "lint_tree",
    "render_json",
    "render_text",
    "rule",
    "run_contract_pass",
    "run_determinism_pass",
    "run_purity_pass",
]
