"""The Section 5.6 comparison: rounds and bits across protocols.

"We compare the cost (i.e., rounds and message bits) of our Byzantine
agreement protocol ... with the cost of the protocol of Srikanth and
Toueg ... If ``eps = 1`` our protocol uses ``2t + 2`` rounds ...  We
find that our protocol uses somewhat more message bits, but it allows
us to greatly reduce the number of rounds."

:func:`comparison_table` produces the analytic rows;
:func:`measured_comparison` additionally *runs* each protocol under a
common adversary and reports observed rounds and metered bits next to
the analytic predictions.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro.adversary.base import Adversary
from repro.agreement.eig_agreement import run_eig_agreement
from repro.agreement.lower_bounds import min_rounds_for_agreement
from repro.agreement.srikanth_toueg import (
    st_agreement_factory,
    st_agreement_rounds,
    st_sizer,
)
from repro.analysis.complexity import (
    compact_bits_estimate,
    eig_total_bits,
    st_bits_estimate,
)
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.core.rounds import k_for_epsilon
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig, Value


def comparison_table(
    t: int,
    value_alphabet_size: int = 2,
    epsilons: Sequence[float] = (1.0, 0.5),
) -> List[Dict[str, Any]]:
    """Analytic Section 5.6 rows for ``n = 3t + 1``.

    Bits for the compact and ST protocols are the paper's O(.) bounds
    with constants 1 (shape only); bits for the exponential baseline
    are exact for our encoding.
    """
    n = 3 * t + 1
    rows: List[Dict[str, Any]] = [
        {
            "protocol": "lower bound",
            "n": n,
            "rounds": min_rounds_for_agreement(t),
            "bits_model": "-",
        },
        {
            "protocol": "exponential EIG (Lamport et al.)",
            "n": n,
            "rounds": t + 1,
            "bits_model": eig_total_bits(n, t, value_alphabet_size),
        },
        {
            "protocol": "Srikanth-Toueg (paper-quoted)",
            "n": n,
            "rounds": 2 * t + 1,
            "bits_model": st_bits_estimate(n, t, value_alphabet_size),
        },
    ]
    for epsilon in epsilons:
        k = k_for_epsilon(epsilon)
        rows.append(
            {
                "protocol": f"compact (eps={epsilon}, k={k})",
                "n": n,
                "rounds": compact_ba_rounds(t, k),
                "bits_model": compact_bits_estimate(
                    n, t, k, value_alphabet_size
                ),
            }
        )
    return rows


def measured_comparison(
    t: int,
    adversary_maker=None,
    epsilons: Sequence[float] = (1.0, 0.5),
    value_alphabet: Sequence[Value] = (0, 1),
    seed: int = 0,
    extended: bool = False,
) -> List[Dict[str, Any]]:
    """Run every protocol on ``n = 3t + 1`` and report measured costs.

    ``adversary_maker(faulty_ids)`` builds a fresh adversary per run
    (``None`` runs fault-free).  Inputs alternate over the alphabet so
    validity does not trivialise the executions.  ``extended`` adds
    rows beyond the paper's own comparison: Phase King and the
    authenticated Dolev–Strong protocol (the latter fault-free — its
    adversaries need oracle wiring the generic makers don't have).
    """
    n = 3 * t + 1
    config = SystemConfig(n=n, t=t)
    alphabet = list(value_alphabet)
    inputs = {
        process_id: alphabet[process_id % len(alphabet)]
        for process_id in config.process_ids
    }
    faulty = list(range(1, t + 1))

    def adversary() -> Optional[Adversary]:
        return adversary_maker(faulty) if adversary_maker else None

    rows: List[Dict[str, Any]] = []

    result = run_eig_agreement(
        config, inputs, alphabet, adversary=adversary(), seed=seed
    )
    rows.append(
        {
            "protocol": "exponential EIG",
            "rounds": result.rounds,
            "bits": result.metrics.total_bits,
            "decisions": sorted(map(repr, result.decided_values())),
        }
    )

    result = run_protocol(
        st_agreement_factory(default=alphabet[0]),
        config,
        inputs,
        adversary=adversary(),
        max_rounds=st_agreement_rounds(t) + 1,
        sizer=st_sizer(config, len(alphabet)),
        seed=seed,
    )
    rows.append(
        {
            "protocol": "Srikanth-Toueg style",
            "rounds": result.rounds,
            "bits": result.metrics.total_bits,
            "decisions": sorted(map(repr, result.decided_values())),
        }
    )

    for epsilon in epsilons:
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=alphabet,
            epsilon=epsilon,
            adversary=adversary(),
            seed=seed,
        )
        rows.append(
            {
                "protocol": f"compact (eps={epsilon})",
                "rounds": result.rounds,
                "bits": result.metrics.total_bits,
                "decisions": sorted(map(repr, result.decided_values())),
            }
        )

    if extended:
        rows.extend(
            _extended_rows(config, inputs, alphabet, adversary, seed)
        )
    return rows


def _extended_rows(config, inputs, alphabet, adversary, seed):
    """Rows beyond the paper's own Section 5.6 table."""
    from repro.agreement.dolev_strong import (
        dolev_strong_factory,
        dolev_strong_rounds,
    )
    from repro.agreement.phase_king import (
        phase_king_factory,
        phase_king_rounds,
    )
    from repro.runtime.crypto import SignatureOracle

    rows = []
    if set(alphabet) <= {0, 1}:
        result = run_protocol(
            phase_king_factory(),
            config,
            inputs,
            adversary=adversary(),
            max_rounds=phase_king_rounds(config.t) + 1,
            seed=seed,
        )
        rows.append(
            {
                "protocol": "Phase King (binary)",
                "rounds": result.rounds,
                "bits": result.metrics.total_bits,
                "decisions": sorted(map(repr, result.decided_values())),
            }
        )

    result = run_protocol(
        dolev_strong_factory(SignatureOracle(), default=list(alphabet)[0]),
        config,
        inputs,
        max_rounds=dolev_strong_rounds(config.t) + 1,
        seed=seed,
    )
    rows.append(
        {
            "protocol": "Dolev-Strong (authenticated, fault-free run)",
            "rounds": result.rounds,
            "bits": result.metrics.total_bits,
            "decisions": sorted(map(repr, result.decided_values())),
        }
    )
    return rows
