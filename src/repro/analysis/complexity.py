"""Closed-form communication models (Section 5.6's arithmetic).

Two kinds of number live here and are kept clearly apart:

* **exact model sizes** for *our* encoding
  (:func:`full_information_message_bits`, :func:`eig_total_bits`) —
  these match the meters bit-for-bit and tests assert that;
* **asymptotic estimates** with the constants set to 1
  (:func:`compact_bits_estimate`, :func:`st_bits_estimate`) —
  the paper gives only O(.) bounds for these, so the estimates are
  for shape comparison (growth exponents, crossovers), not equality.
"""

from __future__ import annotations

import math

from repro.arrays.encoding import HEADER_BITS, bits_for_alphabet
from repro.core.rounds import actual_rounds_for
from repro.errors import ConfigurationError


def _tuple_nodes(n: int, depth: int) -> int:
    """Number of tuple nodes in a depth-``depth`` array over ``n``."""
    if depth == 0:
        return 0
    return (n**depth - 1) // (n - 1) if n > 1 else depth


def full_information_message_bits(
    n: int, round_number: int, value_alphabet_size: int
) -> int:
    """Exact size of one round-``r`` full-information message.

    The message is the sender's round-``r - 1`` state: a depth-
    ``r - 1`` value array with ``n ** (r - 1)`` leaves.
    """
    if round_number < 1:
        raise ConfigurationError(f"rounds are 1-based, got {round_number}")
    depth = round_number - 1
    value_bits = bits_for_alphabet(value_alphabet_size)
    return n**depth * value_bits + _tuple_nodes(n, depth) * HEADER_BITS


def eig_total_bits(n: int, t: int, value_alphabet_size: int) -> int:
    """Exact total traffic of the exponential baseline.

    ``t + 1`` rounds; in round ``r`` each of ``n`` processors sends its
    state to all ``n`` processors.  Matches the runtime meter exactly
    in fault-free executions (faulty senders are not metered).
    """
    return sum(
        n * n * full_information_message_bits(n, round_number, value_alphabet_size)
        for round_number in range(1, t + 2)
    )


def compact_bits_estimate(
    n: int, t: int, k: int, value_alphabet_size: int, overhead: int = 2
) -> float:
    """The paper's bound with constants 1: ``r * n^(k+3) * log |V|``.

    The avalanche portion dominates: in each of ``O(t)`` rounds each
    processor broadcasts at most ``n`` messages of size
    ``O(n^k log |V|)``.
    """
    rounds = actual_rounds_for(t + 1, k, overhead)
    return rounds * float(n) ** (k + 3) * bits_for_alphabet(value_alphabet_size)


def st_bits_estimate(n: int, t: int, value_alphabet_size: int) -> float:
    """Srikanth–Toueg as quoted: ``O(t * n^2 * log n * log |V|)``."""
    return (
        (2 * t + 1)
        * float(n) ** 2
        * max(1.0, math.log2(n))
        * bits_for_alphabet(value_alphabet_size)
    )


def _core_bits(n: int, depth: int, leaf_bits: int) -> int:
    """Exact size of one CORE array under our encoding."""
    return n**depth * leaf_bits + _tuple_nodes(n, depth) * HEADER_BITS


def compact_exact_bits_fault_free(
    n: int,
    t: int,
    k: int,
    value_alphabet_size: int,
    overhead: int = 2,
) -> int:
    """Exact total traffic of a *fault-free* Corollary 10 execution.

    A bit-for-bit model of what the meter records, derived from the
    protocol's structure:

    * **main components** — round 1 broadcasts a scalar value; phases
      ``2..k`` broadcast the depth-``phase - 1`` CORE; phase ``k + 1``
      re-broadcasts the depth-``k`` CORE; rebase rounds and (standard
      overhead) phase ``k + 2`` carry none.  Block-1 COREs have value
      leaves, later blocks index leaves;
    * **avalanche components** — fault-free, every instance is fed a
      unanimous input, so each processor's vote is non-null exactly
      once (the batch's first round: ``n`` votes of one end-of-block
      CORE each) and the null coding zeroes everything after.

    Assumes the value alphabet is disjoint from the integers
    ``1..n`` (e.g. strings), so value leaves are never mistaken for
    index leaves by the sizer; the matching test uses such an
    alphabet.  Everything is multiplied by ``n^2`` ordered links.
    """
    from repro.core.rounds import BlockSchedule

    value_bits = bits_for_alphabet(value_alphabet_size)
    index_bits = bits_for_alphabet(n)
    schedule = BlockSchedule(k, overhead)
    total_rounds = schedule.actual_rounds_for(t + 1)

    def block_leaf_bits(block: int) -> int:
        return value_bits if block == 1 else index_bits

    total = 0
    for round_number in range(1, total_rounds + 1):
        phase = schedule.phase(round_number)
        block = schedule.block(round_number)
        # Main component.
        if round_number == 1:
            total += n * n * value_bits
        elif 2 <= phase <= k + 1:
            depth = min(phase - 1, k)
            total += n * n * _core_bits(n, depth, block_leaf_bits(block))
        # Avalanche first-round votes: the batch for boundary
        # ``block + 1`` is created at phase k + 1 and votes in the
        # next round.  Detect that next round directly.
        if schedule.is_agreement_start_round(round_number):
            # Votes carry the end-of-previous-block CORE (depth k).
            vote_block = (
                block if phase != 1 else block - 1
            )  # overhead=1 folds the vote round into the next block
            total += n * n * n * _core_bits(
                n, k, block_leaf_bits(vote_block)
            )
    return total
