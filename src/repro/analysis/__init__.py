"""Analytic cost models and the Section 5.6 comparison machinery.

* :mod:`repro.analysis.complexity` — closed-form message-bit models
  for the exponential baseline, the compact protocol (Corollary 10)
  and the Srikanth–Toueg comparator,
* :mod:`repro.analysis.tradeoff` — the ``eps <-> k`` time/communication
  tradeoff,
* :mod:`repro.analysis.compare` — builds the Section 5.6 comparison
  table, analytic and (optionally) measured,
* :mod:`repro.analysis.report` — plain-text table rendering shared by
  the benchmarks and EXPERIMENTS.md.
"""

from repro.analysis.complexity import (
    compact_bits_estimate,
    eig_total_bits,
    full_information_message_bits,
    st_bits_estimate,
)
from repro.analysis.tradeoff import (
    achieved_round_factor,
    epsilon_table,
    message_size_exponent,
)
from repro.analysis.compare import comparison_table, measured_comparison
from repro.analysis.report import format_table

__all__ = [
    "compact_bits_estimate",
    "eig_total_bits",
    "full_information_message_bits",
    "st_bits_estimate",
    "achieved_round_factor",
    "epsilon_table",
    "message_size_exponent",
    "comparison_table",
    "measured_comparison",
    "format_table",
]
