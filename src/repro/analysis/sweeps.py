"""Execution sweeps: run a protocol across a grid of scenarios.

Experiments and users keep writing the same triple loop — input
patterns x fault placements x adversary strategies x seeds — and then
evaluating a correctness predicate on every outcome.  This module is
that loop as a library, with structured results.

The grid is embarrassingly parallel: cells share no state (every cell
builds a fresh adversary and derives its randomness from its own seed
through :func:`repro.runtime.rng.derive_rng`), so ``sweep(...,
workers=N)`` fans the cells out over a process pool via
:mod:`repro.analysis.parallel` and returns results identical for every
``N`` — see that module for the portability rules.
"""

from __future__ import annotations

import contextlib
import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.core.predicates import CorrectnessPredicate
from repro.runtime.engine import ExecutionResult, ProcessFactory
from repro.types import ProcessId, SystemConfig, Value

# Builds a fresh adversary for a fault set: (faulty_ids) -> Adversary.
AdversaryMaker = Callable[[Sequence[ProcessId]], Adversary]


@dataclasses.dataclass
class SweepOutcome:
    """One cell of the sweep grid.

    ``predicate_holds`` is ``None`` both when no predicate was supplied
    and when the predicate *raised*; the two are distinguished by
    ``error``, which records the exception (``"TypeError: ..."``) in
    the latter case.  Errored cells count as violations — a predicate
    that cannot evaluate an outcome is a finding, not a pass.
    """

    inputs: Dict[ProcessId, Value]
    faulty: Tuple[ProcessId, ...]
    adversary_name: str
    seed: int
    result: ExecutionResult
    predicate_holds: Optional[bool]
    error: Optional[str] = None

    def describe(self) -> str:
        if self.error is not None:
            status = f"ERROR {self.error}"
        elif self.predicate_holds is None:
            status = "?"
        else:
            status = "ok" if self.predicate_holds else "VIOLATION"
        return (
            f"[{status}] faulty={list(self.faulty)} "
            f"adversary={self.adversary_name} seed={self.seed} "
            f"decisions={sorted(map(repr, self.result.decided_values()))}"
        )


@dataclasses.dataclass
class SweepReport:
    """Aggregate over all cells."""

    outcomes: List[SweepOutcome]

    @property
    def executions(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[SweepOutcome]:
        """Cells where the predicate failed — or could not be evaluated."""
        return [
            outcome
            for outcome in self.outcomes
            if outcome.predicate_holds is False or outcome.error is not None
        ]

    @property
    def errors(self) -> List[SweepOutcome]:
        """The subset of cells whose predicate raised."""
        return [
            outcome for outcome in self.outcomes if outcome.error is not None
        ]

    def all_hold(self) -> bool:
        """Whether the predicate held on every execution."""
        return not self.violations

    def total_bits(self) -> int:
        return sum(o.result.metrics.total_bits for o in self.outcomes)

    def max_rounds(self) -> int:
        return max((o.result.rounds for o in self.outcomes), default=0)


def sweep(
    factory: ProcessFactory,
    config: SystemConfig,
    input_patterns: Iterable[Dict[ProcessId, Value]],
    fault_sets: Iterable[Sequence[ProcessId]],
    adversary_makers: Iterable[Tuple[str, AdversaryMaker]],
    seeds: Iterable[int] = (0,),
    predicate: Optional[CorrectnessPredicate] = None,
    max_rounds: int = 100,
    run_full_rounds: Optional[int] = None,
    sizer: Optional[Callable[[Any], int]] = None,
    is_null: Optional[Callable[[Any], bool]] = None,
    workers: Optional[int] = None,
    cache: Any = None,
    scheduler: Optional[str] = None,
) -> SweepReport:
    """Run the full grid and evaluate ``predicate`` on each outcome.

    ``adversary_makers`` must build a *fresh* adversary per call —
    strategies may carry per-execution state (ghost processes, stale
    caches).  The predicate receives the paper's
    ``(ans(E), F, I)`` triple; ``None`` skips evaluation.  A predicate
    that raises does not abort the sweep: the exception is captured in
    :attr:`SweepOutcome.error` and the cell is reported as a violation.

    ``workers`` selects the executor.  ``None`` (the default) runs
    in-process and keeps live process objects on each result.  Any
    integer ``N >= 1`` routes through
    :func:`repro.analysis.parallel.execute_cells`: results are made
    *portable* (live process objects replaced by picklable summaries,
    traces dropped), and the report is identical for every ``N`` —
    ``workers=1`` is the in-process reference the pool must match.

    ``scheduler`` names the round-engine backend every cell runs under
    (``"lockstep"``, ``"async"``, ``"async:<max_delay>[:<salt>]"``);
    ``None`` honours ``REPRO_SCHEDULER``.  Communication-closed
    protocols yield the same report under every backend
    (docs/runtime.md), for any worker count.

    ``cache`` selects the persistent structural-sharing cache for the
    duration of the sweep: a directory path enables it, ``False``
    disables it even when ``REPRO_CACHE_DIR`` is set, and ``None``
    (the default) leaves the ambient selection alone.  Either way the
    sweep ends by releasing the shared-store registry
    (:func:`repro.arrays.store.release_shared_stores`): gauges are
    recorded, cache deltas are flushed, and unrelated workloads start
    from empty pools.  The cache never changes a report — cold, warm
    and disabled runs are pickle-equal.
    """
    from repro.analysis import parallel  # deferred: parallel imports us
    from repro.arrays import persist as _persist
    from repro.arrays.store import release_shared_stores

    makers = list(adversary_makers)
    context = parallel.SweepContext(
        factory=factory,
        config=config,
        adversary_makers=tuple(makers),
        predicate=predicate,
        max_rounds=max_rounds,
        run_full_rounds=run_full_rounds,
        sizer=sizer,
        is_null=is_null,
        scheduler=scheduler,
    )
    cells = parallel.build_cells(input_patterns, fault_sets, makers, seeds)
    scope = (
        _persist.using_cache(cache)
        if cache is not None
        else contextlib.nullcontext()
    )
    with scope:
        try:
            if workers is None:
                outcomes = [
                    parallel.run_cell(context, cell, portable=False)
                    for cell in cells
                ]
            else:
                outcomes = parallel.execute_cells(context, cells, workers)
        finally:
            release_shared_stores()
    return SweepReport(outcomes)


def standard_adversary_makers(
    values: Sequence[Value] = (0, 1),
) -> List[Tuple[str, AdversaryMaker]]:
    """Fresh-instance makers for the whole Byzantine gallery."""
    from repro.adversary import (
        CollusionAdversary,
        EquivocatingAdversary,
        MalformedArrayAdversary,
        RandomGarbageAdversary,
        SilentAdversary,
        VoteSplitterAdversary,
    )

    value_a, value_b = values[0], values[-1]
    return [
        ("silent", SilentAdversary),
        ("garbage", lambda f: RandomGarbageAdversary(f, palette=list(values))),
        ("equivocator", lambda f: EquivocatingAdversary(f, value_a, value_b)),
        ("splitter", VoteSplitterAdversary),
        ("malformed", MalformedArrayAdversary),
        ("collusion", CollusionAdversary),
    ]
