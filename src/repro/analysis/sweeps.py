"""Execution sweeps: run a protocol across a grid of scenarios.

Experiments and users keep writing the same triple loop — input
patterns x fault placements x adversary strategies x seeds — and then
evaluating a correctness predicate on every outcome.  This module is
that loop as a library, with structured results.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from repro.adversary.base import Adversary
from repro.core.predicates import CorrectnessPredicate
from repro.runtime.engine import ExecutionResult, ProcessFactory, run_protocol
from repro.types import ProcessId, SystemConfig, Value

# Builds a fresh adversary for a fault set: (faulty_ids) -> Adversary.
AdversaryMaker = Callable[[Sequence[ProcessId]], Adversary]


@dataclasses.dataclass
class SweepOutcome:
    """One cell of the sweep grid."""

    inputs: Dict[ProcessId, Value]
    faulty: Tuple[ProcessId, ...]
    adversary_name: str
    seed: int
    result: ExecutionResult
    predicate_holds: Optional[bool]

    def describe(self) -> str:
        status = (
            "?" if self.predicate_holds is None
            else ("ok" if self.predicate_holds else "VIOLATION")
        )
        return (
            f"[{status}] faulty={list(self.faulty)} "
            f"adversary={self.adversary_name} seed={self.seed} "
            f"decisions={sorted(map(repr, self.result.decided_values()))}"
        )


@dataclasses.dataclass
class SweepReport:
    """Aggregate over all cells."""

    outcomes: List[SweepOutcome]

    @property
    def executions(self) -> int:
        return len(self.outcomes)

    @property
    def violations(self) -> List[SweepOutcome]:
        return [
            outcome
            for outcome in self.outcomes
            if outcome.predicate_holds is False
        ]

    def all_hold(self) -> bool:
        """Whether the predicate held on every execution."""
        return not self.violations

    def total_bits(self) -> int:
        return sum(o.result.metrics.total_bits for o in self.outcomes)

    def max_rounds(self) -> int:
        return max((o.result.rounds for o in self.outcomes), default=0)


def sweep(
    factory: ProcessFactory,
    config: SystemConfig,
    input_patterns: Iterable[Dict[ProcessId, Value]],
    fault_sets: Iterable[Sequence[ProcessId]],
    adversary_makers: Iterable[Tuple[str, AdversaryMaker]],
    seeds: Iterable[int] = (0,),
    predicate: Optional[CorrectnessPredicate] = None,
    max_rounds: int = 100,
    run_full_rounds: Optional[int] = None,
    sizer: Optional[Callable[[Any], int]] = None,
    is_null: Optional[Callable[[Any], bool]] = None,
) -> SweepReport:
    """Run the full grid and evaluate ``predicate`` on each outcome.

    ``adversary_makers`` must build a *fresh* adversary per call —
    strategies may carry per-execution state (ghost processes, stale
    caches).  The predicate receives the paper's
    ``(ans(E), F, I)`` triple; ``None`` skips evaluation.
    """
    outcomes: List[SweepOutcome] = []
    for inputs in input_patterns:
        for faulty in fault_sets:
            for adversary_name, maker in adversary_makers:
                for seed in seeds:
                    result = run_protocol(
                        factory,
                        config,
                        inputs,
                        adversary=maker(list(faulty)),
                        max_rounds=max_rounds,
                        run_full_rounds=run_full_rounds,
                        sizer=sizer,
                        is_null=is_null,
                        seed=seed,
                    )
                    holds: Optional[bool] = None
                    if predicate is not None:
                        holds = predicate(
                            result.answer_vector(),
                            frozenset(result.faulty_ids),
                            tuple(
                                inputs[p] for p in config.process_ids
                            ),
                        )
                    outcomes.append(
                        SweepOutcome(
                            inputs=dict(inputs),
                            faulty=tuple(faulty),
                            adversary_name=adversary_name,
                            seed=seed,
                            result=result,
                            predicate_holds=holds,
                        )
                    )
    return SweepReport(outcomes)


def standard_adversary_makers(
    values: Sequence[Value] = (0, 1),
) -> List[Tuple[str, AdversaryMaker]]:
    """Fresh-instance makers for the whole Byzantine gallery."""
    from repro.adversary import (
        CollusionAdversary,
        EquivocatingAdversary,
        MalformedArrayAdversary,
        RandomGarbageAdversary,
        SilentAdversary,
        VoteSplitterAdversary,
    )

    value_a, value_b = values[0], values[-1]
    return [
        ("silent", SilentAdversary),
        ("garbage", lambda f: RandomGarbageAdversary(f, palette=list(values))),
        ("equivocator", lambda f: EquivocatingAdversary(f, value_a, value_b)),
        ("splitter", VoteSplitterAdversary),
        ("malformed", MalformedArrayAdversary),
        ("collusion", CollusionAdversary),
    ]
