"""Plain-text tables for benchmarks and EXPERIMENTS.md."""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence


def _format_cell(value: Any) -> str:
    if isinstance(value, float):
        if value == int(value) and abs(value) < 1e15:
            return str(int(value))
        if abs(value) >= 1e6 or (0 < abs(value) < 1e-3):
            return f"{value:.3e}"
        return f"{value:.3f}"
    return str(value)


def format_table(
    rows: Sequence[Dict[str, Any]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned monospace table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        table.append([_format_cell(row.get(column, "")) for column in columns])
    widths = [
        max(len(table_row[index]) for table_row in table)
        for index in range(len(columns))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = table
    lines.append("  ".join(cell.ljust(width) for cell, width in zip(header, widths)))
    lines.append("  ".join("-" * width for width in widths))
    for table_row in body:
        lines.append(
            "  ".join(cell.ljust(width) for cell, width in zip(table_row, widths))
        )
    return "\n".join(lines)
