"""The eps <-> k time/communication tradeoff (Corollary 10).

"There is a tradeoff between the number of rounds and the degree of
the polynomial bounding the communication.  The value of this tradeoff
is determined by a numerical parameter to the transformation."

For a chosen ``eps > 0`` the paper picks ``k = ceil(2 / eps)``, giving
at most ``(1 + eps)(t + 1)`` rounds and messages of size
``O(n^k log |V|)`` — smaller ``eps`` means more rounds saved turns
into a bigger polynomial degree.  This module tabulates the tradeoff
for the experiment E2 sweep.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.core.rounds import actual_rounds_for, k_for_epsilon, overhead_factor


def achieved_round_factor(k: int, overhead: int = 2) -> float:
    """The worst-case inflation actually achieved: ``(k + overhead)/k``."""
    return overhead_factor(k, overhead)


def message_size_exponent(k: int) -> int:
    """Degree of the per-message polynomial, ``n ** k``."""
    return k


def epsilon_table(
    epsilons: Sequence[float], t: int, overhead: int = 2
) -> List[Dict[str, float]]:
    """One row per ``eps``: k, rounds to decide, inflation, exponent.

    ``rounds`` is the exact round count for ``t + 1`` simulated rounds
    (the final block skips its overhead), so it can undercut the
    ``(1 + eps)(t + 1)`` guarantee; ``guarantee`` is the bound itself.
    """
    rows = []
    for epsilon in epsilons:
        k = k_for_epsilon(epsilon, overhead)
        rounds = actual_rounds_for(t + 1, k, overhead)
        rows.append(
            {
                "epsilon": epsilon,
                "k": k,
                "rounds": rounds,
                "guarantee": (1 + epsilon) * (t + 1),
                "factor": achieved_round_factor(k, overhead),
                "message_exponent": message_size_exponent(k),
            }
        )
    return rows
