"""The ``repro bench`` perf-trajectory harness.

Every paper claim this repository checks is an *aggregate* over grids
of executions, so the quantity that decides whether the reproduction
scales is sweep throughput.  This module runs a small curated suite —
avalanche agreement, compact Byzantine agreement, and the
full-information/compact crossover — through
:func:`repro.analysis.sweeps.sweep` at a chosen worker count, and
writes a machine-readable ``BENCH_<date>.json`` so that every future
change has a recorded perf baseline to compare against (wall time,
executions/sec, metered bits, round counts).

The JSON schema is documented in ``docs/perf.md``; bump
:data:`SCHEMA_VERSION` on incompatible changes.  Bit totals and round
counts double as cheap regression tripwires: they are deterministic,
so a drift between two bench files signals a semantic change, not
noise.
"""

from __future__ import annotations

import contextlib
import dataclasses
import datetime
import json
import pathlib
import platform
import time
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.sweeps import SweepReport, standard_adversary_makers, sweep
from repro.core.predicates import byzantine_agreement_predicate
from repro.types import SystemConfig

SCHEMA_VERSION = 1

#: Default number of pool workers when the caller does not choose.
DEFAULT_WORKERS = 1


@dataclasses.dataclass
class SuiteResult:
    """One suite's aggregate measurements."""

    name: str
    wall_time_s: float
    executions: int
    total_bits: int
    max_rounds: int
    violations: int
    errors: int
    details: Dict[str, Any]
    #: Span rollup for this suite (``path -> {count, total_s, max_s}``),
    #: present when the bench ran under an observer.  Additive to
    #: schema v1: absent from reports produced without profiling, and
    #: never part of the deterministic compare gate (it is wall time).
    profile: Optional[Dict[str, Any]] = None

    @property
    def executions_per_sec(self) -> float:
        if self.wall_time_s <= 0:
            return 0.0
        return self.executions / self.wall_time_s

    def to_json(self) -> Dict[str, Any]:
        payload = {
            "name": self.name,
            "wall_time_s": round(self.wall_time_s, 6),
            "executions": self.executions,
            "executions_per_sec": round(self.executions_per_sec, 3),
            "total_bits": self.total_bits,
            "max_rounds": self.max_rounds,
            "violations": self.violations,
            "errors": self.errors,
            "details": self.details,
        }
        if self.profile is not None:
            payload["profile"] = self.profile
        return payload


def _timed_sweep(
    run: Callable[[], SweepReport],
) -> Tuple[SweepReport, float]:
    start = time.perf_counter()
    report = run()
    return report, time.perf_counter() - start


def _patterns(config: SystemConfig, count: int) -> List[Dict[int, int]]:
    """``count`` deterministic mixed binary input patterns."""
    return [
        {p: (p + shift) % 2 for p in config.process_ids}
        for shift in range(count)
    ]


def _suite_result(
    name: str,
    report: SweepReport,
    elapsed: float,
    details: Dict[str, Any],
) -> SuiteResult:
    return SuiteResult(
        name=name,
        wall_time_s=elapsed,
        executions=report.executions,
        total_bits=report.total_bits(),
        max_rounds=report.max_rounds(),
        violations=len(report.violations),
        errors=len(report.errors),
        details=details,
    )


def bench_avalanche(quick: bool, workers: int) -> SuiteResult:
    """Avalanche agreement (Protocol 2) across the Byzantine gallery.

    Cells are individually cheap, so this suite stresses per-round
    overhead (delivery maps, metering) and executor fan-out cost.
    """
    from repro.avalanche.protocol import avalanche_factory

    config = SystemConfig(n=7, t=2) if quick else SystemConfig(n=13, t=4)
    fault_sets: Sequence[Tuple[int, ...]] = (
        [(1, 2)] if quick
        else [(1, 2, 3, 4), (10, 11, 12, 13)]
    )
    report, elapsed = _timed_sweep(lambda: sweep(
        avalanche_factory(),
        config,
        input_patterns=_patterns(config, 1 if quick else 2),
        fault_sets=fault_sets,
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1) if quick else (0, 1, 2, 3, 4),
        run_full_rounds=8,
        workers=workers,
    ))
    return _suite_result(
        "avalanche", report, elapsed,
        {"n": config.n, "t": config.t, "rounds_per_execution": 8},
    )


def bench_compact_ba(quick: bool, workers: int) -> SuiteResult:
    """Compact Byzantine agreement (Corollary 10), predicate-checked.

    The heavyweight suite: each cell runs the block simulation with
    exact bit metering, which is the hot path Table-1-scale
    regeneration leans on.
    """
    from repro.compact.byzantine_agreement import (
        compact_ba_factory,
        compact_ba_rounds,
    )
    from repro.compact.payload import compact_sizer, payload_is_null

    config = SystemConfig(n=7, t=2) if quick else SystemConfig(n=10, t=3)
    fault_sets: Sequence[Tuple[int, ...]] = (
        [(1, 2)] if quick else [(1, 2, 3), (8, 9, 10)]
    )
    factory = compact_ba_factory(config, [0, 1], default=0, k=1)
    report, elapsed = _timed_sweep(lambda: sweep(
        factory,
        config,
        input_patterns=_patterns(config, 1 if quick else 2),
        fault_sets=fault_sets,
        adversary_makers=standard_adversary_makers(),
        seeds=(0,) if quick else (0, 1),
        predicate=byzantine_agreement_predicate(),
        max_rounds=compact_ba_rounds(config.t, 1) + 1,
        sizer=compact_sizer(config, 2),
        is_null=payload_is_null,
        workers=workers,
    ))
    return _suite_result(
        "compact-ba", report, elapsed, {"n": config.n, "t": config.t, "k": 1},
    )


def bench_fullinfo_crossover(quick: bool, workers: int) -> SuiteResult:
    """The exponential-vs-polynomial crossover, measured end to end.

    Runs the same grid through the exponential full-information
    baseline (EIG) and the compact protocol and records both bit
    totals — the measured counterpart of the ``crossover`` figure.
    """
    from repro.agreement.eig_agreement import eig_agreement_factory
    from repro.compact.byzantine_agreement import (
        compact_ba_factory,
        compact_ba_rounds,
    )
    from repro.compact.payload import compact_sizer, payload_is_null
    from repro.fullinfo.protocol import full_information_sizer

    config = SystemConfig(n=4, t=1) if quick else SystemConfig(n=10, t=3)
    fault_sets: Sequence[Tuple[int, ...]] = [(1,)] if quick else [(1, 2)]
    makers = standard_adversary_makers()
    seeds = (0,) if quick else (0, 1)
    grid = dict(
        input_patterns=_patterns(config, 1),
        fault_sets=fault_sets,
        adversary_makers=makers,
        seeds=seeds,
        predicate=byzantine_agreement_predicate(),
        workers=workers,
    )

    eig_report, eig_elapsed = _timed_sweep(lambda: sweep(
        eig_agreement_factory(config, [0, 1], default=0),
        config,
        max_rounds=config.t + 2,
        sizer=full_information_sizer(2, config.n),
        **grid,
    ))
    compact_factory = compact_ba_factory(config, [0, 1], default=0, k=1)
    compact_report, compact_elapsed = _timed_sweep(lambda: sweep(
        compact_factory,
        config,
        max_rounds=compact_ba_rounds(config.t, 1) + 1,
        sizer=compact_sizer(config, 2),
        is_null=payload_is_null,
        **grid,
    ))

    eig_bits = eig_report.total_bits()
    compact_bits = compact_report.total_bits()
    merged = SweepReport(eig_report.outcomes + compact_report.outcomes)
    return _suite_result(
        "fullinfo-crossover",
        merged,
        eig_elapsed + compact_elapsed,
        {
            "n": config.n,
            "t": config.t,
            "eig_bits": eig_bits,
            "compact_bits": compact_bits,
            "bits_ratio_eig_over_compact": (
                round(eig_bits / compact_bits, 4) if compact_bits else None
            ),
            "eig_max_rounds": eig_report.max_rounds(),
            "compact_max_rounds": compact_report.max_rounds(),
            "eig_wall_time_s": round(eig_elapsed, 6),
            "compact_wall_time_s": round(compact_elapsed, 6),
        },
    )


def bench_fullinfo_deep(quick: bool, workers: int) -> SuiteResult:
    """Deep full-information state building over the shared-node DAG.

    ``n = 4`` for 10 (quick) / 13 (full) rounds: the final states stand
    for up to ``4 ** 12`` (quick: ``4 ** 9``) leaves, far past what the
    per-round O(``n ** r``) validation and sizing walks of the plain
    tuple representation can complete — this suite exists because the
    hash-consing kernel (:mod:`repro.arrays.store`) makes each round
    O(new nodes).  ``leaves_per_state`` in the details records the size
    of the tree each final state stands for.
    """
    from repro.adversary import EquivocatingAdversary, SilentAdversary
    from repro.fullinfo.protocol import (
        full_information_factory,
        full_information_sizer,
    )

    config = SystemConfig(n=4, t=1)
    rounds = 10 if quick else 13
    report, elapsed = _timed_sweep(lambda: sweep(
        full_information_factory([0, 1]),
        config,
        input_patterns=_patterns(config, 2),
        fault_sets=[(1,)],
        adversary_makers=[
            ("silent", SilentAdversary),
            ("equivocator", lambda f: EquivocatingAdversary(f, 0, 1)),
        ],
        seeds=(0,),
        run_full_rounds=rounds,
        sizer=full_information_sizer(2, config.n),
        workers=workers,
    ))
    return _suite_result(
        "fullinfo-deep", report, elapsed,
        {
            "n": config.n,
            "t": config.t,
            "rounds_per_execution": rounds,
            "leaves_per_state": config.n ** rounds,
        },
    )


def bench_kernel(quick: bool, workers: int) -> SuiteResult:
    """Kernel primitives, measured under *both* kernels back to back.

    Times the four hot primitives the flat kernel accelerates — intern,
    sizer measurement, EIG decision, expansion — on identical inputs
    under ``python`` and then ``flat``, so kernel wins are tracked
    independently of the end-to-end suites.  ``errors`` counts
    cross-kernel result mismatches: a nonzero value is a correctness
    alarm, never noise.  ``workers`` is ignored (the primitives are
    single-process by construction).
    """
    from repro.arrays import flat as _flat
    from repro.arrays.encoding import MessageSizer
    from repro.arrays.store import ArrayStore
    from repro.compact.expansion import ExpansionState
    from repro.fullinfo.decision import eig_byzantine_decision
    from repro.types import BOTTOM

    n = 4 if quick else 7
    t = (n - 1) // 3
    deep = 3 if quick else 4
    repeats = 3 if quick else 8
    passes = 2 if quick else 4
    scans = 2 if quick else 6
    config = SystemConfig(n=n, t=t)
    alphabet = (0, 1)

    def value_tree(depth: int, index: int, pattern: int) -> Any:
        # Deterministic mixed trees; every third pattern plants one
        # out-of-alphabet leaf so the undefined paths get exercised.
        if depth == 0:
            if pattern % 3 == 2 and index == 0:
                return "garbage"
            return (index + pattern) % 2
        return tuple(
            value_tree(depth - 1, index * n + child, pattern)
            for child in range(n)
        )

    def index_tree(index: int, pattern: int) -> Any:
        return tuple(
            tuple(
                ((index + pattern + child + inner) % n) + 1
                for inner in range(n)
            )
            for child in range(n)
        )

    walls: Dict[str, float] = {}
    outcomes: Dict[str, Tuple[Any, ...]] = {}
    operations = 0
    for kernel in ("python", "flat"):
        store = ArrayStore(n)
        measured: List[int] = []
        decisions: List[Any] = []
        identity: List[bool] = []
        substituted: List[Any] = []
        operations = 0
        with _flat.use_kernel(kernel):
            # Untimed warmup: first-call costs (numpy dispatch, the
            # memoised chain topology) belong to process startup, not
            # to the steady-state primitives this suite tracks.
            warm = store.intern(value_tree(t + 1, 0, 0))
            MessageSizer(len(alphabet), n).measure(warm)
            eig_byzantine_decision(warm, n, t, 1, default=0, alphabet=alphabet)
            ExpansionState(config, alphabet, store=store).expand(1, warm)
            start = time.perf_counter()
            # Each pass interns fresh trees but reuses the store, and
            # builds fresh policy objects (sizer, expansion state) over
            # it — the shape of a sweep, where per-execution objects
            # come and go while the interned DAG persists.
            for pass_index in range(passes):
                base = pass_index * repeats + 1
                deep_states = [
                    store.intern(value_tree(deep, 0, base + index))
                    for index in range(repeats)
                ]
                decision_states = [
                    store.intern(value_tree(t + 1, 0, base + index))
                    for index in range(repeats)
                ]
                index_states = [
                    store.intern(index_tree(0, base + index))
                    for index in range(repeats)
                ]
                # The scan primitives run `scans` times over the fresh
                # nodes, each time through new policy objects: interning
                # is a once-per-node cost in a sweep, scanning is
                # per-execution, so the weighting mirrors the hot path.
                for _ in range(scans):
                    sizer = MessageSizer(len(alphabet), n)
                    measured.extend(
                        sizer.measure(state) for state in deep_states
                    )
                    decisions.extend(
                        eig_byzantine_decision(
                            state, n, t, 1, default=0, alphabet=alphabet
                        )
                        for state in decision_states
                    )
                    expansion = ExpansionState(
                        config, alphabet, store=store
                    )
                    for subject in config.process_ids:
                        expansion.set_out(
                            2, subject, deep_states[subject % repeats]
                        )
                    identity.extend(
                        expansion.expand(1, state) is not BOTTOM
                        for state in deep_states
                    )
                    substituted.extend(
                        expansion.expand(2, state)
                        for state in index_states
                    )
                # 3 interns per pattern, then 4 scan primitives per
                # pattern per scan round.
                operations += 3 * repeats + scans * 4 * repeats
            walls[kernel] = time.perf_counter() - start
        outcomes[kernel] = (
            tuple(measured),
            tuple(decisions),
            tuple(identity),
            tuple(substituted),
        )
    mismatches = sum(
        1
        for python_part, flat_part in zip(
            outcomes["python"], outcomes["flat"]
        )
        if python_part != flat_part
    )
    python_s = walls["python"]
    flat_s = walls["flat"]
    return SuiteResult(
        name="kernel",
        wall_time_s=python_s + flat_s,
        executions=operations * 2,
        total_bits=sum(outcomes["python"][0]),
        max_rounds=0,
        violations=0,
        errors=mismatches,
        details={
            "n": n,
            "t": t,
            "depth": deep,
            "repeats": repeats,
            "python_wall_s": round(python_s, 6),
            "flat_wall_s": round(flat_s, 6),
            "flat_speedup": (
                round(python_s / flat_s, 3) if flat_s > 0 else None
            ),
        },
    )


#: The curated suite registry, in canonical run order.
SUITES: Dict[str, Callable[[bool, int], SuiteResult]] = {
    "avalanche": bench_avalanche,
    "compact-ba": bench_compact_ba,
    "fullinfo-crossover": bench_fullinfo_crossover,
    "fullinfo-deep": bench_fullinfo_deep,
    "kernel": bench_kernel,
}


#: Suite fields the warm-cache leg must reproduce exactly — a drift
#: means the persistent cache changed results, which is a bug, never
#: noise.
_DETERMINISTIC_FIELDS = (
    "executions", "total_bits", "max_rounds", "violations", "errors",
)


def _counter_delta(
    current: Dict[str, int], before: Dict[str, int]
) -> Dict[str, int]:
    return {
        name: current.get(name, 0) - before.get(name, 0)
        for name in current
        if current.get(name, 0) != before.get(name, 0)
    }


def run_bench(
    suites: Optional[Sequence[str]] = None,
    quick: bool = False,
    workers: int = DEFAULT_WORKERS,
    events: Optional[pathlib.Path] = None,
    profile: bool = True,
    cache_dir: Optional[pathlib.Path] = None,
    trace: bool = False,
) -> Dict[str, Any]:
    """Run the selected suites; returns the full JSON-ready report.

    With ``profile`` (the default) the bench runs under its own
    observer: each suite's JSON gains a ``profile`` span rollup, and
    ``events`` optionally streams the structured event log to a path.
    ``trace`` additionally records causal ``deliver`` edges for every
    serial envelope delivery (:mod:`repro.obs.trace`); it requires
    ``events``.  ``profile=False`` runs with the null observer — the
    control used when measuring instrumentation overhead
    (docs/observability.md).

    ``cache_dir`` switches every suite to a cold-then-warm pair under
    the persistent structural-sharing cache
    (:mod:`repro.arrays.persist`): the suite runs once against the
    cache (cold — flush cost included), then again (warm — replaying
    the segments the cold leg wrote).  The recorded suite numbers are
    the *cold* leg's; the warm wall time, the warm/cold ratio and the
    per-leg ``persist.*`` counter deltas land in
    ``details["persist"]``.  The two legs must agree on every
    deterministic quantity — a mismatch raises instead of writing a
    corrupt baseline.
    """
    from repro.arrays import flat as _flat
    from repro.arrays import persist as _persist
    from repro.arrays.store import release_shared_stores

    names = list(suites) if suites else list(SUITES)
    unknown = [name for name in names if name not in SUITES]
    if unknown:
        raise KeyError(
            f"unknown bench suite(s) {unknown}; known: {sorted(SUITES)}"
        )

    def run_one(name: str, observer: Any = None) -> SuiteResult:
        def leg() -> SuiteResult:
            if observer is not None:
                mark = observer.profile_snapshot()
                with observer.span(f"bench.{name}"):
                    result = SUITES[name](quick, workers)
                result.profile = profile_dict(observer.profile_since(mark))
            else:
                result = SUITES[name](quick, workers)
            # Suites are unrelated workloads: record the interning
            # registry's size gauges, flush cache deltas, then drop
            # the registry so one suite's nodes never skew the next
            # suite's footprint.
            release_shared_stores()
            return result

        if cache_dir is None:
            return leg()
        cache = _persist.active()
        if cache is None:  # pragma: no cover - using_cache guards this
            return leg()
        before = dict(cache.counters)
        cold = leg()
        cold_counters = _counter_delta(cache.counters, before)
        before = dict(cache.counters)
        warm = leg()
        warm_counters = _counter_delta(cache.counters, before)
        for field in _DETERMINISTIC_FIELDS:
            if getattr(cold, field) != getattr(warm, field):
                raise RuntimeError(
                    f"bench {name}: warm-cache leg changed {field} from "
                    f"{getattr(cold, field)} to {getattr(warm, field)} — "
                    "the persistent cache must never alter results"
                )
        warm_s = warm.wall_time_s
        cold.details["persist"] = {
            "cache_dir": str(cache_dir),
            "cold_wall_s": round(cold.wall_time_s, 6),
            "warm_wall_s": round(warm_s, 6),
            "warm_over_cold": (
                round(warm_s / cold.wall_time_s, 4)
                if cold.wall_time_s > 0
                else None
            ),
            "cold_counters": cold_counters,
            "warm_counters": warm_counters,
        }
        return cold

    results: List[SuiteResult] = []
    cache_scope = (
        _persist.using_cache(cache_dir)
        if cache_dir is not None
        else contextlib.nullcontext()
    )
    with cache_scope:
        if profile or events is not None:
            from repro.obs.core import Observer, observing
            from repro.obs.events import EventLog
            from repro.obs.spans import profile_dict

            sink = EventLog(events) if events is not None else None
            with observing(Observer(events=sink, trace=trace)) as observer:
                for position, name in enumerate(names):
                    results.append(run_one(name, observer))
                    if observer.events_on:
                        # Per-suite telemetry rollup: progress + the
                        # counter delta this suite contributed, so
                        # `repro status` can read a half-finished
                        # bench log.
                        observer.emit_rollup(
                            "suite", position, results[-1].executions
                        )
        else:
            for name in names:
                results.append(run_one(name))
    total_time = sum(result.wall_time_s for result in results)
    total_executions = sum(result.executions for result in results)
    return {
        "schema_version": SCHEMA_VERSION,
        "generated_at": datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds"),
        "quick": quick,
        "workers": workers,
        "kernel": _flat.kernel_name(),
        "cache_dir": str(cache_dir) if cache_dir is not None else None,
        "python_version": platform.python_version(),
        "platform": platform.platform(),
        "suites": [result.to_json() for result in results],
        "totals": {
            "wall_time_s": round(total_time, 6),
            "executions": total_executions,
            "executions_per_sec": (
                round(total_executions / total_time, 3) if total_time else 0.0
            ),
            "total_bits": sum(result.total_bits for result in results),
            "max_rounds": max(
                (result.max_rounds for result in results), default=0
            ),
            "violations": sum(result.violations for result in results),
            "errors": sum(result.errors for result in results),
        },
    }


def compare_reports(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    threshold: float = 0.25,
    floor_s: float = 0.1,
) -> List[str]:
    """Per-suite regression verdicts against a baseline report.

    Returns a list of problem strings; empty means the gate passes.
    Wall time may regress by up to ``threshold`` (a fraction) per
    suite — and a regression under ``floor_s`` seconds absolute is
    never flagged, so sub-100ms suites don't trip on timer noise; the
    deterministic quantities (executions, total bits, max rounds,
    violations, errors) must match exactly — drift there signals a
    semantic change, not noise.  Suites present in only one report are
    skipped: a new suite has nothing to regress against.
    """
    problems: List[str] = []
    for field in ("quick", "workers"):
        if current.get(field) != baseline.get(field):
            problems.append(
                f"config mismatch: current {field}={current.get(field)!r} "
                f"vs baseline {field}={baseline.get(field)!r} — "
                "runs are not comparable"
            )
    baseline_suites = {
        suite["name"]: suite for suite in baseline.get("suites", [])
    }
    for suite in current.get("suites", []):
        name = suite["name"]
        base = baseline_suites.get(name)
        if base is None:
            continue
        base_time = base.get("wall_time_s", 0.0)
        wall_time = suite["wall_time_s"]
        if (
            base_time > 0
            and wall_time > base_time * (1.0 + threshold)
            and wall_time - base_time > floor_s
        ):
            problems.append(
                f"{name}: wall time {wall_time:.3f}s exceeds baseline "
                f"{base_time:.3f}s by more than {threshold:.0%}"
            )
        for field in (
            "executions", "total_bits", "max_rounds", "violations", "errors"
        ):
            if field in base and suite.get(field) != base[field]:
                problems.append(
                    f"{name}: {field} drifted from {base[field]} to "
                    f"{suite.get(field)} (deterministic quantity — "
                    "regenerate the baseline if the change is intended)"
                )
    return problems


def _merged_profile(report: Dict[str, Any]) -> Dict[str, Any]:
    """Sum every suite's span rollup into one report-wide profile."""
    total: Dict[str, Dict[str, Any]] = {}
    for suite in report.get("suites", []):
        for path, stats in (suite.get("profile") or {}).items():
            merged = total.setdefault(
                path, {"count": 0, "total_s": 0.0, "max_s": 0.0}
            )
            merged["count"] += stats["count"]
            merged["total_s"] = round(merged["total_s"] + stats["total_s"], 6)
            merged["max_s"] = max(merged["max_s"], stats["max_s"])
    return total


def profile_regressions(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    limit: int = 3,
) -> List[str]:
    """Top span slowdowns between two bench reports, as display lines.

    Informational only — span totals are wall time, so this never
    joins the :func:`compare_reports` pass/fail gate.  Empty when
    either report carries no profile sections.
    """
    from repro.obs.summarize import top_regressions

    current_profile = _merged_profile(current)
    baseline_profile = _merged_profile(baseline)
    if not current_profile or not baseline_profile:
        return []
    return [
        (
            f"{entry['span']}: {entry['baseline_s']:.3f}s -> "
            f"{entry['current_s']:.3f}s (+{entry['delta_s']:.3f}s"
            + (f", x{entry['ratio']:.2f}" if entry["ratio"] else "")
            + ")"
        )
        for entry in top_regressions(
            current_profile, baseline_profile, limit=limit
        )
    ]


def default_output_path(
    directory: Optional[pathlib.Path] = None,
) -> pathlib.Path:
    """``BENCH_<YYYY-MM-DD>.json`` in ``directory`` (default: cwd)."""
    base = directory if directory is not None else pathlib.Path.cwd()
    stamp = datetime.date.today().isoformat()
    return base / f"BENCH_{stamp}.json"


def write_report(report: Dict[str, Any], path: pathlib.Path) -> pathlib.Path:
    """Write ``report`` as pretty JSON; returns the path written."""
    path = pathlib.Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=2, sort_keys=False) + "\n")
    return path


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable summary of a bench report (the CLI's stdout)."""
    kernel = report.get("kernel")
    lines = [
        f"repro bench — {report['generated_at']} "
        f"(workers={report['workers']}, "
        + (f"kernel={kernel}, " if kernel else "")
        + f"{'quick' if report['quick'] else 'full'} suite)",
        "",
        f"{'suite':<22} {'time(s)':>8} {'execs':>6} {'exec/s':>8} "
        f"{'bits':>12} {'rounds':>6} {'viol':>5}",
    ]
    for suite in report["suites"]:
        lines.append(
            f"{suite['name']:<22} {suite['wall_time_s']:>8.3f} "
            f"{suite['executions']:>6} {suite['executions_per_sec']:>8.1f} "
            f"{suite['total_bits']:>12} {suite['max_rounds']:>6} "
            f"{suite['violations']:>5}"
        )
    totals = report["totals"]
    lines.append(
        f"{'TOTAL':<22} {totals['wall_time_s']:>8.3f} "
        f"{totals['executions']:>6} {totals['executions_per_sec']:>8.1f} "
        f"{totals['total_bits']:>12} {totals['max_rounds']:>6} "
        f"{totals['violations']:>5}"
    )
    return "\n".join(lines)


# -- perf trajectory across committed baselines ------------------------------


def _trend_config(report: Dict[str, Any]) -> str:
    """The comparability key for one report (docs/perf.md).

    Reports are only mutually comparable when they ran the same suite
    shape: quick flag, worker count, kernel, and whether a persistent
    cache was attached.  The kernel *is* part of this key (unlike the
    ``--compare`` gate, which deliberately allows cross-kernel
    comparisons) because the trend view is about drift over time, not
    kernel equivalence.
    """
    cache = "cache" if report.get("cache_dir") else "nocache"
    return (
        f"{'quick' if report.get('quick') else 'full'}"
        f"/w{report.get('workers')}"
        f"/{report.get('kernel') or 'python'}"
        f"/{cache}"
    )


def trend_report(
    directory: Optional[pathlib.Path] = None,
    threshold: float = 0.25,
    floor_s: float = 0.1,
) -> Dict[str, Any]:
    """Tabulate every committed ``BENCH_*.json`` as a perf trajectory.

    Reports are grouped by comparability key (quick/workers/kernel/
    cache) and ordered by file name (the date-stamped naming makes
    that chronological); within a group, each suite's wall time is
    compared against the *previous* report's and flagged when it
    drifts by more than ``threshold`` in either direction (with the
    same ``floor_s`` absolute floor the compare gate uses, so sub-
    100ms suites don't flag on timer noise).  Deterministic-counter
    drift (executions, bits, rounds, violations, errors) is always
    flagged — that is a semantic change, not noise.
    """
    base = directory if directory is not None else pathlib.Path.cwd()
    files = sorted(base.glob("BENCH_*.json"))
    groups: Dict[str, List[Tuple[str, Dict[str, Any]]]] = {}
    unreadable: List[str] = []
    for path in files:
        try:
            report = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as error:
            unreadable.append(f"{path.name}: {error}")
            continue
        if not isinstance(report, dict) or "suites" not in report:
            unreadable.append(f"{path.name}: not a bench report")
            continue
        groups.setdefault(_trend_config(report), []).append(
            (path.name, report)
        )
    flags: List[str] = []
    trend_groups: List[Dict[str, Any]] = []
    for config in sorted(groups):
        entries = groups[config]
        rows: List[Dict[str, Any]] = []
        previous: Dict[str, Dict[str, Any]] = {}
        for file_name, report in entries:
            for suite in report.get("suites", []):
                name = suite["name"]
                row = {
                    "file": file_name,
                    "suite": name,
                    "wall_time_s": suite.get("wall_time_s"),
                    "executions_per_sec": suite.get("executions_per_sec"),
                    "executions": suite.get("executions"),
                    "total_bits": suite.get("total_bits"),
                    "max_rounds": suite.get("max_rounds"),
                    "violations": suite.get("violations"),
                    "errors": suite.get("errors"),
                    "flags": [],
                }
                base_suite = previous.get(name)
                if base_suite is not None:
                    base_time = base_suite.get("wall_time_s") or 0.0
                    wall = suite.get("wall_time_s") or 0.0
                    if (
                        base_time > 0
                        and abs(wall - base_time) > base_time * threshold
                        and abs(wall - base_time) > floor_s
                    ):
                        direction = (
                            "slower" if wall > base_time else "faster"
                        )
                        flag = (
                            f"wall {base_time:.3f}s -> {wall:.3f}s "
                            f"({direction} by more than {threshold:.0%})"
                        )
                        row["flags"].append(flag)
                        flags.append(f"{config}: {file_name}: {name}: {flag}")
                    for field in _DETERMINISTIC_FIELDS:
                        if (
                            field in base_suite
                            and suite.get(field) != base_suite[field]
                        ):
                            flag = (
                                f"{field} drifted from "
                                f"{base_suite[field]} to {suite.get(field)}"
                            )
                            row["flags"].append(flag)
                            flags.append(
                                f"{config}: {file_name}: {name}: {flag}"
                            )
                previous[name] = suite
                rows.append(row)
        trend_groups.append({"config": config, "rows": rows})
    return {
        "directory": str(base),
        "reports": sum(len(entries) for entries in groups.values()),
        "threshold": threshold,
        "groups": trend_groups,
        "flags": flags,
        "unreadable": unreadable,
    }


def render_trend(report: Dict[str, Any]) -> str:
    """Human-readable perf trajectory (the ``repro bench trend`` stdout)."""
    if not report["reports"]:
        return f"no BENCH_*.json reports found in {report['directory']}"
    lines = [
        f"bench trend — {report['reports']} report(s) in "
        f"{report['directory']} (threshold {report['threshold']:.0%})"
    ]
    for group in report["groups"]:
        lines.append("")
        lines.append(f"[{group['config']}]")
        lines.append(
            f"  {'file':<34} {'suite':<22} {'time(s)':>8} {'exec/s':>9} "
            f"{'bits':>12} {'flags'}"
        )
        for row in group["rows"]:
            flag_text = "; ".join(row["flags"]) if row["flags"] else ""
            lines.append(
                f"  {row['file']:<34} {row['suite']:<22} "
                f"{row['wall_time_s']:>8.3f} "
                f"{row['executions_per_sec']:>9.1f} "
                f"{row['total_bits']:>12} {flag_text}".rstrip()
            )
    if report["unreadable"]:
        lines.append("")
        for problem in report["unreadable"]:
            lines.append(f"unreadable: {problem}")
    lines.append("")
    lines.append(
        f"{len(report['flags'])} flag(s)" if report["flags"]
        else "no drifts flagged"
    )
    return "\n".join(lines)
