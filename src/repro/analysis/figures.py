"""Terminal-friendly charts for the reproduction's figures.

The paper has no graphical figures, but its central quantitative story
— exponential versus polynomial communication growth and where the
curves cross — is naturally a plot.  :func:`ascii_chart` renders
multi-series data as monospace text so the benches, CLI and
EXPERIMENTS.md can show the shape without any plotting dependency.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError

Point = Tuple[float, float]

# Series markers, assigned in insertion order.
_MARKERS = "*o+x#@%"


def _transform(value: float, log_scale: bool) -> float:
    if not log_scale:
        return value
    if value <= 0:
        raise ConfigurationError(
            f"log-scale chart requires positive values, got {value}"
        )
    return math.log10(value)


def ascii_chart(
    series: Dict[str, Sequence[Point]],
    width: int = 60,
    height: int = 18,
    log_y: bool = True,
    title: str = "",
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render ``{label: [(x, y), ...]}`` as a monospace chart.

    ``log_y`` plots ``log10(y)`` (the right scale for exponential-vs-
    polynomial comparisons); axis ticks show the raw values.
    """
    if not series or all(not points for points in series.values()):
        raise ConfigurationError("ascii_chart needs at least one point")

    all_points = [point for points in series.values() for point in points]
    xs = [point[0] for point in all_points]
    ys = [_transform(point[1], log_y) for point in all_points]
    x_low, x_high = min(xs), max(xs)
    y_low, y_high = min(ys), max(ys)
    x_span = (x_high - x_low) or 1.0
    y_span = (y_high - y_low) or 1.0

    grid = [[" "] * width for _ in range(height)]

    def plot(x: float, y: float, marker: str) -> None:
        column = round((x - x_low) / x_span * (width - 1))
        row = round((y - y_low) / y_span * (height - 1))
        grid[height - 1 - row][column] = marker

    legend = []
    for index, (label, points) in enumerate(series.items()):
        marker = _MARKERS[index % len(_MARKERS)]
        legend.append(f"{marker} {label}")
        for x, y in points:
            plot(x, _transform(y, log_y), marker)

    def y_tick(row: int) -> str:
        fraction = (height - 1 - row) / (height - 1)
        raw = y_low + fraction * y_span
        value = 10**raw if log_y else raw
        if value >= 1000 or (0 < value < 0.01):
            return f"{value:9.2e}"
        return f"{value:9.2f}"

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append("  ".join(legend))
    scale_note = f"{y_label} (log scale)" if log_y else y_label
    lines.append(scale_note)
    for row in range(height):
        tick = y_tick(row) if row % 4 == 0 or row == height - 1 else " " * 9
        lines.append(f"{tick} |{''.join(grid[row])}")
    lines.append(" " * 9 + "+" + "-" * width)
    left = f"{x_low:g}"
    right = f"{x_high:g}"
    padding = width - len(left) - len(right)
    lines.append(
        " " * 10 + left + " " * max(1, padding) + right
    )
    lines.append(" " * 10 + x_label)
    return "\n".join(lines)


def crossover_chart(max_t: int = 8, k: int = 1) -> str:
    """The reproduction's headline figure: bits vs t, both protocols."""
    from repro.analysis.complexity import compact_bits_estimate, eig_total_bits

    eig_points = [
        (t, float(eig_total_bits(3 * t + 1, t, 2))) for t in range(1, max_t + 1)
    ]
    compact_points = [
        (t, compact_bits_estimate(3 * t + 1, t, k, 2))
        for t in range(1, max_t + 1)
    ]
    return ascii_chart(
        {
            "exponential EIG (exact model)": eig_points,
            f"compact k={k} (paper O-bound, c=1)": compact_points,
        },
        title="Figure R1 — total message bits vs t (n = 3t + 1)",
        x_label="t (fault tolerance)",
        y_label="message bits",
    )
