"""Process-pool execution of sweep grids.

A sweep grid (inputs x fault sets x adversaries x seeds) is
embarrassingly parallel: every cell runs an independent execution
whose randomness is fully determined by the cell's own seed (the
engine derives all substreams through
:func:`repro.runtime.rng.derive_rng`), and cells never communicate.
This module fans the cells out over a
:class:`concurrent.futures.ProcessPoolExecutor` while keeping one hard
guarantee: **the report is a pure function of the grid**, byte-for-byte
identical for any worker count, including the in-process ``workers=1``
reference path.

Determinism is engineered, not assumed:

* every cell is described by a picklable :class:`SweepCell` value;
* a cell's execution depends only on the cell and the shared
  :class:`SweepContext` (fresh adversary per cell, seed-derived RNG);
* results are collected in submission order (never completion order),
  so chunking and scheduling cannot reorder outcomes;
* both the serial and the pooled paths run the *same* per-cell
  function, :func:`run_cell`, with the same portability rules.

Portability: sweep contexts hold closures (factories, decision rules)
that pickle refuses, so the pool uses the ``fork`` start method and
shares the context by process inheritance through a module global —
which in turn is why the worker entry points below must live at module
level (``fork`` workers resolve the submitted callable by qualified
name).  Where ``fork`` is unavailable or the pool cannot start, the
executor degrades gracefully to the serial path with a warning rather
than failing the sweep.

Results are made *portable* before crossing the process boundary:
live :class:`~repro.runtime.node.Process` objects (which may hold
unpicklable closures) are replaced by :class:`ProcessSummary` stubs
and traces are dropped — the same stripping
:mod:`repro.runtime.checkpoint` applies when persisting results.
"""

from __future__ import annotations

import dataclasses
import math
import multiprocessing
import os
import pickle
import warnings
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

import repro.obs.core as _obs
from repro.analysis.sweeps import AdversaryMaker, SweepOutcome
from repro.arrays import persist as _persist
from repro.obs.spans import now as _now
from repro.core.predicates import CorrectnessPredicate
from repro.runtime.engine import ExecutionResult, ProcessFactory, run_protocol
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value, is_bottom

#: Purity exemptions for this module, consumed by ``repro.statics``
#: (see docs/statics.md).  Worker-entry machinery must be module-level
#: and communicate through a module global because the ``fork`` pool
#: shares unpicklable context by inheritance, not by argument passing;
#: this is declared here, with justification, instead of per-line
#: ``# noqa`` markers.
PURITY_EXEMPT = {
    "execute_cells": (
        "sets the module-global worker context before forking the pool: "
        "fork-started workers inherit closures (factories, predicates) "
        "that pickling cannot transport; the global is cleared in a "
        "finally block and never read by in-process sweep code"
    ),
    "_run_cell_chunk": (
        "calls os.getpid() to label its worker's timing sample — the "
        "pid never reaches an outcome, only the observer's explicitly "
        "nondeterministic worker-utilization section"
    ),
}

#: Target number of chunks handed to each worker.  More than one chunk
#: per worker smooths load imbalance (cells differ in round counts);
#: the constant is deliberately fixed so chunking is deterministic.
_CHUNKS_PER_WORKER = 4


@dataclasses.dataclass(frozen=True)
class SweepCell:
    """One grid cell as a picklable task spec.

    Everything a worker needs to *identify* the execution: the input
    pattern, the fault set, which adversary maker to instantiate (by
    index into the context's maker tuple — makers themselves are often
    lambdas and do not pickle), and the seed all substreams derive
    from.
    """

    index: int
    inputs: Dict[ProcessId, Value]
    faulty: Tuple[ProcessId, ...]
    adversary_name: str
    adversary_index: int
    seed: int


@dataclasses.dataclass
class SweepContext:
    """The grid-wide constants shared by every cell.

    Not picklable in general (factories and predicates are closures);
    shared with workers by fork inheritance.
    """

    factory: ProcessFactory
    config: SystemConfig
    adversary_makers: Tuple[Tuple[str, AdversaryMaker], ...]
    predicate: Optional[CorrectnessPredicate]
    max_rounds: int
    run_full_rounds: Optional[int]
    sizer: Optional[Callable[[Any], int]]
    is_null: Optional[Callable[[Any], bool]]
    # Scheduler backend spec ("lockstep", "async", "async:<d>[:<s>]");
    # a *name*, not an instance — schedulers carry per-execution state,
    # so each cell resolves its own fresh one.  None honours
    # REPRO_SCHEDULER (default lockstep).
    scheduler: Optional[str] = None


class ProcessSummary:
    """Picklable stand-in for a live process in portable results.

    Carries exactly the state :class:`ExecutionResult` consumers read
    off processes after the fact — the decision and when it was made —
    plus the introspection surface (:meth:`has_decided`,
    :meth:`snapshot`) sweep reporting uses.
    """

    __slots__ = ("process_id", "decision", "decision_round")

    def __init__(
        self,
        process_id: ProcessId,
        decision: Value,
        decision_round: Optional[Round],
    ):
        self.process_id = process_id
        self.decision = decision
        self.decision_round = decision_round

    def has_decided(self) -> bool:
        return not is_bottom(self.decision)

    def snapshot(self) -> Any:
        return {"decision": self.decision}

    def __eq__(self, other: Any) -> bool:
        if not isinstance(other, ProcessSummary):
            return NotImplemented
        return (
            self.process_id == other.process_id
            and self.decision == other.decision
            and self.decision_round == other.decision_round
        )

    def __repr__(self) -> str:
        return (
            f"ProcessSummary({self.process_id}, {self.decision!r}, "
            f"round={self.decision_round})"
        )


def portable_result(result: ExecutionResult) -> ExecutionResult:
    """``result`` with unpicklable parts replaced, picklable parts kept.

    Live process objects become :class:`ProcessSummary` stubs and the
    trace is dropped — the same policy
    :func:`repro.runtime.checkpoint.save_result` applies on disk.
    Everything quantitative (decisions, rounds, metrics) is untouched.
    """
    return dataclasses.replace(
        result,
        trace=None,
        processes={
            process_id: ProcessSummary(
                process_id, process.decision, process.decision_round
            )
            for process_id, process in result.processes.items()
        },
    )


def build_cells(
    input_patterns: Iterable[Dict[ProcessId, Value]],
    fault_sets: Iterable[Sequence[ProcessId]],
    adversary_makers: Sequence[Tuple[str, AdversaryMaker]],
    seeds: Iterable[int],
) -> List[SweepCell]:
    """Flatten the grid into cells, in the sweep's canonical order.

    The nesting order (inputs, faults, adversaries, seeds) matches the
    historical serial loop, so reports keep their cell order across
    executor choices.
    """
    cells: List[SweepCell] = []
    index = 0
    for inputs in input_patterns:
        for faulty in fault_sets:
            for adversary_index, (name, _maker) in enumerate(adversary_makers):
                for seed in seeds:
                    cells.append(
                        SweepCell(
                            index=index,
                            inputs=dict(inputs),
                            faulty=tuple(faulty),
                            adversary_name=name,
                            adversary_index=adversary_index,
                            seed=int(seed),
                        )
                    )
                    index += 1
    return cells


def evaluate_predicate(
    predicate: Optional[CorrectnessPredicate],
    result: ExecutionResult,
    config: SystemConfig,
) -> Tuple[Optional[bool], Optional[str]]:
    """Evaluate the paper's ``(ans(E), F, I)`` predicate, capturing errors.

    Returns ``(holds, error)``: ``(None, None)`` when no predicate was
    supplied, ``(None, "TypeError: ...")`` when it raised.
    """
    if predicate is None:
        return None, None
    try:
        holds = bool(
            predicate(
                result.answer_vector(),
                frozenset(result.faulty_ids),
                tuple(
                    result.inputs.get(process_id, BOTTOM)
                    for process_id in config.process_ids
                ),
            )
        )
    except Exception as error:  # surfaced per-cell, never aborts the grid
        return None, f"{type(error).__name__}: {error}"
    return holds, None


def run_cell(
    context: SweepContext, cell: SweepCell, portable: bool = True
) -> SweepOutcome:
    """Run one cell to completion — the single per-cell code path.

    Both the serial and the pooled executors call this, so a report's
    content cannot depend on which executor produced it.  ``portable``
    strips the result for process-boundary transport; the ``workers=1``
    reference path strips too, keeping reports comparable bit-for-bit.
    """
    observer = _obs.ACTIVE
    if observer is not None and observer.events_on:
        observer.emit(
            "cell_start",
            index=cell.index,
            adversary=cell.adversary_name,
            seed=cell.seed,
            faulty=list(cell.faulty),
        )
    _name, maker = context.adversary_makers[cell.adversary_index]
    with _obs.span("sweep.cell"):
        result = run_protocol(
            context.factory,
            context.config,
            cell.inputs,
            adversary=maker(list(cell.faulty)),
            max_rounds=context.max_rounds,
            run_full_rounds=context.run_full_rounds,
            sizer=context.sizer,
            is_null=context.is_null,
            seed=cell.seed,
            scheduler=context.scheduler,
        )
    holds, error = evaluate_predicate(context.predicate, result, context.config)
    if observer is not None:
        observer.count("sweep.cells")
        if observer.events_on:
            observer.emit("cell_end", index=cell.index, holds=holds)
    if portable:
        result = portable_result(result)
    return SweepOutcome(
        inputs=dict(cell.inputs),
        faulty=cell.faulty,
        adversary_name=cell.adversary_name,
        seed=cell.seed,
        result=result,
        predicate_holds=holds,
        error=error,
    )


#: Fork-inherited sweep context for pool workers.  Set by
#: :func:`execute_cells` immediately before the pool forks, cleared in
#: its ``finally``; workers read it through :func:`_run_cell_chunk`.
_WORKER_CONTEXT: Optional[SweepContext] = None

#: Fork-inherited flag: was the parent counting when the pool forked?
#: Workers cannot read ``_obs.ACTIVE`` for this — the first chunk a
#: worker runs clears it, and pool processes are reused across chunks.
_WORKER_OBSERVED = False


def _run_cell_chunk(
    cells: List[SweepCell],
) -> Tuple[List[SweepOutcome], int, float, Dict[str, int]]:
    """Worker entry point: run a chunk of cells against the inherited
    context; returns ``(outcomes, worker_pid, busy_seconds, counters)``.

    Must stay module-level — the pool transports it by qualified name.
    A fork-started worker inherits the parent's active observer; it is
    dropped first thing so workers never record events into a sink
    they do not own.  When the parent *was* observing, the chunk runs
    under a local counters-only observer instead and ships the
    scheduling-independent counters home (pure per-cell sums like
    ``net.bits`` or ``sweep.cells``; cache ``.hit``/``.miss`` splits
    depend on which chunks shared a worker process, so they stay
    worker-local).  The parent aggregates worker utilization from the
    returned pid/duration.
    """
    observed = _WORKER_OBSERVED
    _obs.deactivate()
    context = _WORKER_CONTEXT
    if context is None:
        raise RuntimeError(
            "sweep worker started without an inherited context (pool was "
            "not fork-started?)"
        )
    started = _now()
    counters: Dict[str, int] = {}
    try:
        if observed:
            chunk_observer = _obs.Observer(spans=False)
            _obs.activate(chunk_observer)
            try:
                outcomes = [run_cell(context, cell) for cell in cells]
            finally:
                _obs.deactivate()
            counters = {
                name: value
                for name, value in chunk_observer.registry.counters().items()
                if not name.endswith((".hit", ".miss"))
            }
        else:
            outcomes = [run_cell(context, cell) for cell in cells]
    finally:
        # Flush persistent-cache deltas on chunk exit: the worker
        # inherited the parent's preloaded manifest at fork; its new
        # nodes/verdicts land as content-addressed segments, so
        # concurrent workers writing identical deltas collide
        # harmlessly (see repro.arrays.persist).
        _persist.flush_active()
    return outcomes, os.getpid(), _now() - started, counters


def _chunked(cells: List[SweepCell], workers: int) -> List[List[SweepCell]]:
    """Deterministic contiguous chunks, ~``_CHUNKS_PER_WORKER`` per worker."""
    chunk_size = max(
        1, math.ceil(len(cells) / (workers * _CHUNKS_PER_WORKER))
    )
    return [
        cells[start:start + chunk_size]
        for start in range(0, len(cells), chunk_size)
    ]


def _canonical(outcome: SweepOutcome) -> SweepOutcome:
    """Break object sharing so the outcome's byte form is standalone.

    Outcomes coming back from a pool chunk share subobjects (one
    config instance per worker) while serial outcomes share them
    grid-wide; pickle encodes that sharing topology as memo
    references, so identically-valued reports would serialize
    differently per worker count.  A per-outcome round-trip normalizes
    every outcome to its own object graph — singletons like
    :data:`~repro.types.BOTTOM` survive by ``__reduce__`` identity.
    """
    return pickle.loads(pickle.dumps(outcome))


def _run_serial(
    context: SweepContext, cells: Sequence[SweepCell]
) -> List[SweepOutcome]:
    return [_canonical(run_cell(context, cell)) for cell in cells]


def execute_cells(
    context: SweepContext,
    cells: Sequence[SweepCell],
    workers: int,
) -> List[SweepOutcome]:
    """Run ``cells`` over ``workers`` processes; outcomes in cell order.

    ``workers <= 1`` (or a grid of fewer than two cells) takes the
    in-process reference path.  Pool start-up or transport failures —
    no ``fork`` start method, a broken pool, unpicklable outcomes —
    degrade to that same path with a :class:`RuntimeWarning`; protocol
    errors inside a cell are *not* masked and propagate as they would
    serially.
    """
    cells = list(cells)
    if workers <= 1 or len(cells) < 2:
        with _obs.span("sweep.execute"):
            return _run_serial(context, cells)
    try:
        mp_context = multiprocessing.get_context("fork")
    except ValueError:
        warnings.warn(
            "parallel sweep needs the 'fork' start method; running serially",
            RuntimeWarning,
            stacklevel=2,
        )
        with _obs.span("sweep.execute"):
            return _run_serial(context, cells)

    cache = _persist.active()
    if cache is not None:
        # Preload the manifest (and every matching segment) once in
        # the parent, pre-fork: every worker inherits the warmed
        # stores and loaded verdict maps instead of re-reading the
        # cache directory per process.
        cache.preload_all()

    global _WORKER_CONTEXT, _WORKER_OBSERVED
    observer = _obs.ACTIVE
    _WORKER_CONTEXT = context
    _WORKER_OBSERVED = observer is not None and observer.counters_on
    try:
        chunks = _chunked(cells, workers)
        worker_count = min(workers, len(chunks))
        busy_by_pid: Dict[int, float] = {}
        cells_by_pid: Dict[int, int] = {}
        # Worker slots are assigned by first-appearance order in the
        # deterministic collection sequence, so telemetry never leaks
        # raw (scheduling-dependent) pids into the log.
        slot_by_pid: Dict[int, int] = {}
        if observer is not None and observer.events_on:
            # Announce the plan so `repro status` can compute progress
            # for an interrupted run from the artifact alone.
            observer.emit(
                "rollup", scope="plan", index=0, cells=len(cells),
                counters={},
            )
        pool_started = _now()
        with _obs.span("sweep.execute"), ProcessPoolExecutor(
            max_workers=worker_count, mp_context=mp_context
        ) as pool:
            # Submission order == collection order: completion order can
            # never leak into the report.
            futures = [pool.submit(_run_cell_chunk, chunk) for chunk in chunks]
            outcomes: List[SweepOutcome] = []
            for chunk_index, future in enumerate(futures):
                (
                    chunk_outcomes, worker_pid, busy_s, worker_counters,
                ) = future.result()
                if observer is not None:
                    if observer.counters_on:
                        observer.registry.absorb(worker_counters)
                    observer.count("pool.chunks")
                    if observer.events_on:
                        observer.emit(
                            "chunk",
                            index=chunk_index,
                            cells=len(chunk_outcomes),
                        )
                        # Telemetry rollup: the counter delta this
                        # chunk contributed (deterministic — worker
                        # counters are absorbed in submission order).
                        observer.emit_rollup(
                            "chunk", chunk_index, len(chunk_outcomes)
                        )
                        slot = slot_by_pid.setdefault(
                            worker_pid, len(slot_by_pid)
                        )
                        observer.emit_nondet(
                            "worker_sample",
                            chunk=chunk_index,
                            worker=slot,
                            cells=len(chunk_outcomes),
                            busy_s=round(busy_s, 6),
                        )
                    busy_by_pid[worker_pid] = (
                        busy_by_pid.get(worker_pid, 0.0) + busy_s
                    )
                    cells_by_pid[worker_pid] = (
                        cells_by_pid.get(worker_pid, 0) + len(chunk_outcomes)
                    )
                outcomes.extend(
                    _canonical(outcome) for outcome in chunk_outcomes
                )
        if observer is not None:
            _record_pool_stats(
                observer, worker_count, _now() - pool_started,
                busy_by_pid, cells_by_pid,
            )
        return outcomes
    except (BrokenProcessPool, OSError, pickle.PicklingError) as error:
        warnings.warn(
            f"parallel sweep degraded to serial execution: {error}",
            RuntimeWarning,
            stacklevel=2,
        )
        with _obs.span("sweep.execute"):
            return _run_serial(context, cells)
    finally:
        _WORKER_CONTEXT = None
        _WORKER_OBSERVED = False


def _record_pool_stats(
    observer: "_obs.Observer",
    worker_count: int,
    wall_s: float,
    busy_by_pid: Dict[int, float],
    cells_by_pid: Dict[int, int],
) -> None:
    """Fold one pool run's worker utilization into the observer.

    Everything here derives from the wall clock and worker scheduling,
    so it lands in gauges and the ``workers`` event — the log's
    explicitly nondeterministic section.  Workers are reported as
    slots (ordered by pid) rather than by pid, keeping the *shape*
    stable across runs.
    """
    idle_s = max(0.0, worker_count * wall_s - sum(busy_by_pid.values()))
    observer.gauge("pool.workers", worker_count)
    observer.gauge("pool.wall_s", round(wall_s, 6))
    observer.gauge("pool.idle_s", round(idle_s, 6))
    workers_payload = []
    for slot, worker_pid in enumerate(sorted(cells_by_pid)):
        cells_run = cells_by_pid[worker_pid]
        busy = round(busy_by_pid.get(worker_pid, 0.0), 6)
        observer.gauge(f"pool.worker.{slot}.cells", cells_run)
        observer.gauge(f"pool.worker.{slot}.busy_s", busy)
        workers_payload.append({"cells": cells_run, "busy_s": busy})
    if observer.events_on:
        observer.emit_nondet(
            "workers",
            workers=workers_payload,
            wall_s=round(wall_s, 6),
            idle_s=round(idle_s, 6),
        )
