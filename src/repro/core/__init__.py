"""The paper's formal core.

* :mod:`repro.core.rounds` — the block/prior/phase/simul round
  arithmetic of Section 5.1 (Table 1),
* :mod:`repro.core.automaton` — protocols as synchronous systems of
  automata (Section 3.1),
* :mod:`repro.core.execution` — executions ``(k, F, I, M)``, deciding
  executions, ``ans(E)``,
* :mod:`repro.core.predicates` — correctness predicates and the
  standard instances (agreement, validity, approximate agreement),
* :mod:`repro.core.simulation` — the simulation relation and a
  runtime checker (Theorem 1 made executable),
* :mod:`repro.core.transform` — the headline canonical-form
  transformation: any consensus protocol in, a communication-efficient
  protocol out.
"""

from repro.core.rounds import BlockSchedule, block, phase, prior, simul
from repro.core.automaton import AutomatonProtocol, run_automaton_locally
from repro.core.execution import ExecutionRecord
from repro.core.predicates import (
    CorrectnessPredicate,
    agreement_predicate,
    approximate_agreement_predicate,
    byzantine_agreement_predicate,
    validity_predicate,
)
from repro.core.simulation import SimulationWitness, check_simulation

__all__ = [
    "BlockSchedule",
    "block",
    "phase",
    "prior",
    "simul",
    "AutomatonProtocol",
    "run_automaton_locally",
    "ExecutionRecord",
    "CorrectnessPredicate",
    "agreement_predicate",
    "approximate_agreement_predicate",
    "byzantine_agreement_predicate",
    "validity_predicate",
    "SimulationWitness",
    "check_simulation",
]
