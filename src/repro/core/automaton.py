"""Protocols as synchronous systems of automata (Section 3.1).

Following Lynch, Fischer and Fowler, a protocol ``P`` is described by

* ``V`` — the set of input values (an element of the state set is
  identified with each element of ``V``; these are the initial
  states),
* ``Q`` — the processor states,
* ``L`` — the messages,
* ``mu_pq : Q -> L`` — message generation, from ``p`` to ``q``,
* ``delta_p : L^n -> Q`` — state transition (the prior state is
  omitted: a processor can send anything it needs to itself),
* ``gamma_p : Q -> {BOTTOM} u V`` — the decision function; a
  processor's decision is the first non-bottom value of ``gamma_p``.

:class:`AutomatonProtocol` is that description as an object.  It can
be *run natively* on the synchronous runtime via
:class:`AutomatonProcess`, *reconstructed* from full-information
states via :func:`repro.fullinfo.decision.reconstruct_state`
(Theorem 2), or *transformed* into the communication-efficient
canonical form via :mod:`repro.core.transform`.
"""

from __future__ import annotations

import abc
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runtime.node import Process
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value


class AutomatonProtocol(abc.ABC):
    """One consensus protocol in the Section 3.1 formalism.

    Subclasses define the four functions plus the input alphabet and,
    for terminating protocols, the round bound after which every
    execution has decided (``rounds_to_decide``).
    """

    def __init__(self, config: SystemConfig, input_values: Sequence[Value]):
        if not input_values:
            raise ConfigurationError("input alphabet V must be non-empty")
        self.config = config
        self.input_values: Tuple[Value, ...] = tuple(input_values)

    # -- the four functions -------------------------------------------------

    def initial_state(self, process_id: ProcessId, input_value: Value) -> Any:
        """The initial state identified with ``input_value``."""
        if input_value not in self.input_values:
            raise ConfigurationError(
                f"input {input_value!r} is not in V={self.input_values!r}"
            )
        return input_value

    @abc.abstractmethod
    def message(self, sender: ProcessId, receiver: ProcessId, state: Any) -> Any:
        """``mu_pq``: the message ``sender`` sends ``receiver``."""

    @abc.abstractmethod
    def transition(self, process_id: ProcessId, messages: Tuple[Any, ...]) -> Any:
        """``delta_p``: next state from the n-tuple of received messages.

        ``messages[q - 1]`` is the message received from processor
        ``q`` (1-based ids, 0-based tuple as in the paper's ``L^n``).
        """

    @abc.abstractmethod
    def decision(self, process_id: ProcessId, state: Any) -> Value:
        """``gamma_p``: a value once ready to decide, else BOTTOM."""

    # -- protocol metadata ----------------------------------------------------

    @property
    def rounds_to_decide(self) -> Optional[int]:
        """Round bound by which every execution decides, if known."""
        return None

    def coerce_message(
        self, sender: ProcessId, receiver: ProcessId, raw: Any, round_number: Round
    ) -> Any:
        """Map arbitrary received bytes into the message set ``L``.

        The formal model says faulty processors send arbitrary messages
        *from L*; a real network can deliver anything (or nothing), so
        each protocol defines how a correct processor normalises
        off-alphabet receptions.  The default maps everything through
        unchanged except an absent message, which becomes the
        protocol's :meth:`default_message`.
        """
        if raw is BOTTOM:
            return self.default_message(sender, receiver, round_number)
        return raw

    def default_message(
        self, sender: ProcessId, receiver: ProcessId, round_number: Round
    ) -> Any:
        """The element of ``L`` substituted for an absent message."""
        return self.input_values[0]


#: Protoflow message-size bound (COM rule family).  The adapter sends
#: one message per receiver; the payload is whatever the wrapped
#: automaton's mu produces, certified per concrete automaton.
MESSAGE_BOUNDS = {
    "AutomatonProcess": (
        "linear",
        "n messages per round, each the wrapped automaton's payload; "
        "the per-payload bound is certified on the automaton class "
        "itself, not on this adapter",
    ),
}


class AutomatonProcess(Process):
    """Runs one :class:`AutomatonProtocol` processor on the runtime."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        protocol: AutomatonProtocol,
    ):
        super().__init__(process_id, config)
        self.protocol = protocol
        self.state = protocol.initial_state(process_id, input_value)
        self._maybe_decide(round_number=0)

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return {
            receiver: self.protocol.message(self.process_id, receiver, self.state)
            for receiver in self.config.process_ids
        }

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        messages = tuple(
            self.protocol.coerce_message(
                sender, self.process_id, incoming[sender], round_number
            )
            for sender in self.config.process_ids
        )
        self.state = self.protocol.transition(self.process_id, messages)
        self._maybe_decide(round_number)

    def _maybe_decide(self, round_number: Round) -> None:
        if self.has_decided():
            return  # later gamma values are ignored once decided
        value = self.protocol.decision(self.process_id, self.state)
        if value is not BOTTOM:
            self.decide(value, round_number)

    def snapshot(self) -> Any:
        return {"state": self.state, "decision": self.decision}


def automaton_factory(protocol: AutomatonProtocol):
    """A :func:`repro.runtime.engine.run_protocol` factory for ``protocol``."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> AutomatonProcess:
        return AutomatonProcess(process_id, config, input_value, protocol)

    return factory


def run_automaton_locally(
    protocol: AutomatonProtocol,
    inputs: Dict[ProcessId, Value],
    rounds: int,
) -> Dict[ProcessId, List[Any]]:
    """Fault-free reference execution without the network.

    Returns, per processor, the list of states indexed by round
    (``states[p][i]`` is the round-``i`` state; index 0 is the initial
    state).  Used as the reference side ``E`` when checking
    simulations of fault-free executions, and by the recursive
    reconstruction tests of Theorem 2.
    """
    config = protocol.config
    states: Dict[ProcessId, List[Any]] = {
        process_id: [protocol.initial_state(process_id, inputs[process_id])]
        for process_id in config.process_ids
    }
    for _ in range(1, rounds + 1):
        messages_to: Dict[ProcessId, List[Any]] = {
            receiver: [] for receiver in config.process_ids
        }
        for sender in config.process_ids:
            for receiver in config.process_ids:
                messages_to[receiver].append(
                    protocol.message(sender, receiver, states[sender][-1])
                )
        for receiver in config.process_ids:
            states[receiver].append(
                protocol.transition(receiver, tuple(messages_to[receiver]))
            )
    return states
