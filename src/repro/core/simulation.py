"""The simulation relation, executable (Sections 3.1 and 5.5).

Protocol ``P'`` simulates protocol ``P`` when there are simulation
functions ``f_p`` and a non-decreasing onto scaling function ``r``
such that every execution ``E' = (k, F, I, M')`` of ``P'`` has a
matching execution ``E = (r(k), F, I, M)`` of ``P`` with
``f_p(state(p, i, E')) = state(p, r(i), E)`` for every correct ``p``
and round ``i``.

Checking this involves an existential over ``E``.  Two checkers are
provided, matching how the paper's two simulations are verified:

* :func:`check_simulation` — for the case where the reference
  execution is known (e.g. fault-free runs, where ``E`` is unique
  given the inputs): directly compares ``f_p(state')`` against
  recorded reference states.
* :func:`check_fullinfo_consistency` — for simulations *of the
  full-information protocol* under faults (Theorem 9), where ``E``
  must be constructed.  A family of claimed full-information states is
  consistent with *some* execution iff (a) every correct processor's
  round-``j`` state is an ``n``-vector whose ``q``-th component, for
  correct ``q``, equals ``q``'s round-``j-1`` state, (b) components
  for faulty ``q`` are well-shaped depth-``j-1`` value arrays (any
  such array is a message a faulty processor could legally send), and
  (c) round-0 states are the correct processors' inputs.  This checker
  *constructs* the witness ``E`` in the only way possible and verifies
  it, making Theorem 9 a runtime-checkable property.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Dict, List, Mapping, Optional, Sequence

from repro.arrays.value_array import array_depth, array_leaves
from repro.errors import ProtocolViolation, SimulationMismatch
from repro.types import ProcessId, Value


@dataclasses.dataclass
class SimulationWitness:
    """The data of a simulation claim: ``f_p`` per processor and ``r``."""

    simulation_functions: Mapping[ProcessId, Callable[[Any], Any]]
    scaling: Callable[[int], int]

    def map_state(self, process_id: ProcessId, state: Any) -> Any:
        return self.simulation_functions[process_id](state)


def check_simulation(
    witness: SimulationWitness,
    primed_states: Mapping[ProcessId, Sequence[Any]],
    reference_states: Mapping[ProcessId, Sequence[Any]],
    correct_ids: Sequence[ProcessId],
    rounds: int,
) -> None:
    """Verify ``f_p(state(p, i, E')) = state(p, r(i), E)`` directly.

    ``primed_states[p][i]`` is the round-``i`` state of ``p`` in the
    simulating execution; ``reference_states[p][j]`` the round-``j``
    state in the reference execution.  Raises
    :class:`SimulationMismatch` on the first violated equality.
    """
    for process_id in correct_ids:
        for round_number in range(1, rounds + 1):
            mapped = witness.map_state(
                process_id, primed_states[process_id][round_number]
            )
            target_round = witness.scaling(round_number)
            expected = reference_states[process_id][target_round]
            if mapped != expected:
                raise SimulationMismatch(
                    f"processor {process_id}, round {round_number}: "
                    f"f_p(state') != state at scaled round {target_round}"
                )


def check_fullinfo_consistency(
    full_states: Mapping[ProcessId, Sequence[Any]],
    correct_ids: Sequence[ProcessId],
    inputs: Mapping[ProcessId, Value],
    n: int,
    value_alphabet: Optional[Sequence[Value]] = None,
) -> None:
    """Verify claimed full-information states against *some* execution.

    ``full_states[p][j]`` is the claimed round-``j`` full-information
    state of correct processor ``p`` (index 0 holds the input).  The
    function raises :class:`SimulationMismatch` if no execution ``E``
    of the full-information protocol could produce these states, per
    the three conditions in the module docstring.
    """
    correct = sorted(correct_ids)
    alphabet = set(value_alphabet) if value_alphabet is not None else None

    for process_id in correct:
        states = full_states[process_id]
        if not states:
            raise SimulationMismatch(f"no states recorded for {process_id}")
        if states[0] != inputs[process_id]:
            raise SimulationMismatch(
                f"processor {process_id}: round-0 state {states[0]!r} is not "
                f"its input {inputs[process_id]!r}"
            )

    rounds = min(len(full_states[process_id]) - 1 for process_id in correct)
    for round_number in range(1, rounds + 1):
        for process_id in correct:
            state = full_states[process_id][round_number]
            if not isinstance(state, tuple) or len(state) != n:
                raise SimulationMismatch(
                    f"processor {process_id}, round {round_number}: state is "
                    f"not an n-vector"
                )
            for sender in range(1, n + 1):
                component = state[sender - 1]
                if sender in correct:
                    expected = full_states[sender][round_number - 1]
                    if component != expected:
                        raise SimulationMismatch(
                            f"processor {process_id}, round {round_number}: "
                            f"component for correct sender {sender} does not "
                            f"match the sender's round-{round_number - 1} state"
                        )
                else:
                    _check_legal_faulty_message(
                        component, round_number - 1, n, alphabet,
                        context=(
                            f"processor {process_id}, round {round_number}, "
                            f"faulty sender {sender}"
                        ),
                    )


def _check_legal_faulty_message(
    component: Any,
    expected_depth: int,
    n: int,
    alphabet: Optional[set],
    context: str,
) -> None:
    """A faulty sender's component must be a legal round message.

    In the full-information protocol a legal round-``j+1`` message is
    any depth-``j`` value array; anything else could not appear in a
    correct processor's state, so its presence falsifies the claimed
    simulation.
    """
    try:
        depth = array_depth(component, n)
    except ProtocolViolation as error:
        raise SimulationMismatch(f"{context}: malformed array ({error})")
    if depth != expected_depth:
        raise SimulationMismatch(
            f"{context}: depth {depth}, expected {expected_depth}"
        )
    if alphabet is not None:
        for leaf in array_leaves(component):
            if leaf not in alphabet:
                raise SimulationMismatch(
                    f"{context}: leaf {leaf!r} outside the value alphabet"
                )


def states_by_round(
    snapshots: Mapping[int, Mapping[ProcessId, Any]],
    key: str,
) -> Dict[ProcessId, List[Any]]:
    """Pivot trace snapshots into per-processor state sequences.

    ``snapshots[r][p]`` is a snapshot dict; the returned mapping has
    ``result[p][r] = snapshots[r][p][key]`` with round 0 left to the
    caller (traces start at round 1).
    """
    result: Dict[ProcessId, List[Any]] = {}
    for round_number in sorted(snapshots):
        for process_id, snapshot in snapshots[round_number].items():
            result.setdefault(process_id, [None]).append(snapshot[key])
    return result
