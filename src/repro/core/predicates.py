"""Correctness predicates (Section 3.1).

A predicate ``C`` with domain ``(V u {BOTTOM})^n x 2^{1..n} x V^n``
judges a deciding execution from its answer vector ``ans(E)``, fault
set ``F`` and input vector ``I``.  A protocol satisfies ``C`` when
every deciding execution makes ``C(ans(E), F, I)`` true.  Theorem 1
says simulation preserves any such predicate, which is why the paper
can state its transformation once and have it apply to Byzantine
agreement, approximate agreement, and the rest.

Predicates here are plain callables; combinators build compound ones.
"""

from __future__ import annotations

from typing import Callable, FrozenSet, Sequence, Tuple

from repro.types import BOTTOM, ProcessId, Value

# C(ans, F, I) -> bool.  ``ans`` and ``I`` are n-tuples indexed by
# processor id minus one; ``F`` is the fault set.
CorrectnessPredicate = Callable[
    [Tuple[Value, ...], FrozenSet[ProcessId], Tuple[Value, ...]], bool
]


def _correct_entries(
    answers: Sequence[Value], faulty: FrozenSet[ProcessId]
) -> list:
    return [
        answers[index]
        for index in range(len(answers))
        if (index + 1) not in faulty
    ]


def agreement_predicate() -> CorrectnessPredicate:
    """All correct processors reach the same decision."""

    def check(answers, faulty, inputs) -> bool:
        decisions = _correct_entries(answers, faulty)
        return len({decision for decision in decisions}) <= 1

    return check


def validity_predicate() -> CorrectnessPredicate:
    """Unanimous correct input forces that value as every decision."""

    def check(answers, faulty, inputs) -> bool:
        correct_inputs = _correct_entries(inputs, faulty)
        if len(set(correct_inputs)) != 1:
            return True  # no unanimity, nothing required
        required = correct_inputs[0]
        return all(
            decision == required for decision in _correct_entries(answers, faulty)
        )

    return check


def conjunction(*predicates: CorrectnessPredicate) -> CorrectnessPredicate:
    """All of the given predicates must hold."""

    def check(answers, faulty, inputs) -> bool:
        return all(predicate(answers, faulty, inputs) for predicate in predicates)

    return check


def byzantine_agreement_predicate() -> CorrectnessPredicate:
    """The Section 2 conditions: agreement and validity together."""
    return conjunction(agreement_predicate(), validity_predicate())


def strong_validity_predicate() -> CorrectnessPredicate:
    """Every decision was some correct processor's input.

    Stronger than the paper's validity condition; useful for checking
    the plausibility-style behaviour of multivalued protocols.
    """

    def check(answers, faulty, inputs) -> bool:
        correct_inputs = set(_correct_entries(inputs, faulty))
        return all(
            decision in correct_inputs
            for decision in _correct_entries(answers, faulty)
            if decision is not BOTTOM
        )

    return check


def approximate_agreement_predicate(epsilon: float) -> CorrectnessPredicate:
    """Approximate agreement: eps-closeness plus range validity.

    Decisions of correct processors must lie within ``epsilon`` of one
    another and inside the range of the correct inputs — the
    correctness conditions of the approximate agreement problem the
    paper names as a second application (Fekete's protocol).
    """

    def check(answers, faulty, inputs) -> bool:
        decisions = [
            float(value) for value in _correct_entries(answers, faulty)
            if value is not BOTTOM
        ]
        if not decisions:
            return True
        correct_inputs = [float(value) for value in _correct_entries(inputs, faulty)]
        low, high = min(correct_inputs), max(correct_inputs)
        if max(decisions) - min(decisions) > epsilon + 1e-12:
            return False
        return all(low - 1e-12 <= value <= high + 1e-12 for value in decisions)

    return check
