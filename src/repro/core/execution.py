"""Execution records (Section 3.1).

An execution of a protocol is a 4-tuple ``(k, F, I, M)``: the number
of rounds, the faulty set, the input vector, and the messages sent by
faulty processors.  :class:`ExecutionRecord` is that tuple as a value
object, constructible from a runtime
:class:`repro.runtime.engine.ExecutionResult` (whose trace holds the
faulty messages when tracing was enabled).
"""

from __future__ import annotations

import dataclasses
from typing import Dict, FrozenSet, List, Tuple

from repro.runtime.engine import ExecutionResult
from repro.runtime.message import Envelope
from repro.types import BOTTOM, ProcessId, Value


@dataclasses.dataclass(frozen=True)
class ExecutionRecord:
    """The paper's ``(k, F, I, M)`` together with the observed answers."""

    rounds: int
    faulty: FrozenSet[ProcessId]
    inputs: Tuple[Value, ...]
    faulty_messages: Tuple[Envelope, ...]
    answers: Tuple[Value, ...]

    @classmethod
    def from_result(cls, result: ExecutionResult) -> "ExecutionRecord":
        """Project a runtime result onto the formal 4-tuple.

        ``M`` is populated only when the run recorded a trace;
        otherwise it is empty (the formal content of ``M`` is not
        needed to evaluate correctness predicates, which see only
        ``ans(E)``, ``F`` and ``I``).
        """
        faulty_messages: List[Envelope] = []
        if result.trace is not None:
            faulty_messages = [
                envelope
                for envelope in result.trace.envelopes
                if envelope.sender in result.faulty_ids
            ]
        return cls(
            rounds=result.rounds,
            faulty=frozenset(result.faulty_ids),
            inputs=tuple(
                result.inputs[process_id]
                for process_id in result.config.process_ids
            ),
            faulty_messages=tuple(faulty_messages),
            answers=result.answer_vector(),
        )

    def is_deciding(self) -> bool:
        """All correct processors decided (their answer is not BOTTOM)."""
        return all(
            self.answers[process_id - 1] is not BOTTOM
            for process_id in range(1, len(self.answers) + 1)
            if process_id not in self.faulty
        )

    def correct_answers(self) -> Dict[ProcessId, Value]:
        """Decision per correct processor."""
        return {
            process_id: self.answers[process_id - 1]
            for process_id in range(1, len(self.answers) + 1)
            if process_id not in self.faulty
        }
