"""Round arithmetic for the compact full-information protocol.

Section 5.1 defines, for a protocol structured in blocks of ``k + 2``
rounds (``k`` progress rounds followed by 2 overhead rounds), four
relations between actual round numbers and simulated round numbers:

* ``block(r)``  — which block round ``r`` belongs to,
* ``prior(r)``  — the last round before the current block,
* ``phase(r)``  — rounds since the start of the current block,
* ``simul(r)``  — rounds of full-information progress made so far.

Table 1 of the paper tabulates these for ``k = 2`` over 14 actual
rounds (8 simulated rounds); ``benchmarks/test_bench_table1.py``
regenerates that table from these functions.

The source text's formulas are OCR-damaged; the definitions below are
the unique ones consistent with the table's shape and with the uses in
Lemmas 7–8 and Theorem 9 (e.g. ``simul`` must gain exactly 1 in each
of the first ``k`` phases and stall through phases ``k+1`` and
``k+2``; 14 actual rounds with ``k = 2`` must yield 8 simulated
rounds, as the paper's caption states).
"""

from __future__ import annotations

import dataclasses
import math
from typing import Iterable, Iterator, List

from repro.errors import ConfigurationError
from repro.types import Round


def _check(round_number: Round, k: int) -> None:
    if k < 1:
        raise ConfigurationError(f"block parameter k must be >= 1, got {k}")
    if round_number < 1:
        raise ConfigurationError(
            f"round numbers are 1-based, got {round_number}"
        )


def block(round_number: Round, k: int) -> int:
    """The block (1-based) of which ``round_number`` is a part."""
    _check(round_number, k)
    return (round_number - 1) // (k + 2) + 1


def prior(round_number: Round, k: int) -> Round:
    """The last round prior to the current block (0 for block 1)."""
    _check(round_number, k)
    return (block(round_number, k) - 1) * (k + 2)


def phase(round_number: Round, k: int) -> int:
    """Rounds since the start of the current block, in ``1..k+2``."""
    _check(round_number, k)
    return round_number - prior(round_number, k)


def simul(round_number: Round, k: int) -> int:
    """Simulated full-information rounds completed by ``round_number``.

    Gains one per phase through phase ``k``; freezes during the two
    overhead phases.
    """
    _check(round_number, k)
    return k * (block(round_number, k) - 1) + min(phase(round_number, k), k)


def actual_rounds_for(simulated_rounds: int, k: int, overhead: int = 2) -> Round:
    """Fewest actual rounds that simulate ``simulated_rounds`` rounds.

    The final block does not need its overhead rounds: once the last
    progress round has run, a decision rule can be applied
    immediately.  This is the round count behind Corollary 10: with
    ``k = ceil(2 / eps)`` (and the standard overhead of 2) the result
    is at most ``(1 + eps) * simulated_rounds``.  The ``n >= 4t + 1``
    variant of Section 5.6 has ``overhead = 1``.
    """
    if k < 1:
        raise ConfigurationError(f"block parameter k must be >= 1, got {k}")
    if simulated_rounds < 1:
        raise ConfigurationError(
            f"simulated_rounds must be >= 1, got {simulated_rounds}"
        )
    full_blocks = (simulated_rounds - 1) // k
    tail = (simulated_rounds - 1) % k + 1
    return full_blocks * (k + overhead) + tail


def k_for_epsilon(epsilon: float, overhead: int = 2) -> int:
    """The paper's parameter choice ``k = ceil(2 / eps)`` (Corollary 10).

    Generalised: ``(k + overhead) / k <= 1 + eps`` needs
    ``k >= overhead / eps``.
    """
    if epsilon <= 0:
        raise ConfigurationError(f"epsilon must be positive, got {epsilon}")
    return math.ceil(overhead / epsilon)


def overhead_factor(k: int, overhead: int = 2) -> float:
    """Worst-case actual/simulated round ratio, ``(k + overhead) / k``."""
    if k < 1:
        raise ConfigurationError(f"block parameter k must be >= 1, got {k}")
    return (k + overhead) / k


@dataclasses.dataclass(frozen=True)
class BlockSchedule:
    """All round arithmetic for one parameter ``k``, as an object.

    Protocol code holds one of these and asks structural questions
    (is this a progress round? does an avalanche batch start now?)
    instead of re-deriving modular arithmetic inline.

    ``overhead`` is the number of non-progress rounds per block: 2 for
    the paper's main construction (rebroadcast + avalanche start), 1
    for the ``n >= 4t + 1`` fast variant of Section 5.6 in which the
    one-round-consensus avalanche folds its first round into the next
    block's first progress round.
    """

    k: int
    overhead: int = 2

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ConfigurationError(
                f"block parameter k must be >= 1, got {self.k}"
            )
        if self.overhead not in (1, 2):
            raise ConfigurationError(
                f"overhead must be 1 or 2, got {self.overhead}"
            )

    @property
    def block_length(self) -> int:
        """Rounds per block, ``k + overhead``."""
        return self.k + self.overhead

    def block(self, round_number: Round) -> int:
        _check(round_number, self.k)
        return (round_number - 1) // self.block_length + 1

    def prior(self, round_number: Round) -> Round:
        return (self.block(round_number) - 1) * self.block_length

    def phase(self, round_number: Round) -> int:
        return round_number - self.prior(round_number)

    def simul(self, round_number: Round) -> int:
        return self.k * (self.block(round_number) - 1) + min(
            self.phase(round_number), self.k
        )

    def is_progress_round(self, round_number: Round) -> bool:
        """Phases ``1..k`` advance the simulation."""
        return self.phase(round_number) <= self.k

    def is_rebroadcast_round(self, round_number: Round) -> bool:
        """Phase ``k + 1``: the end-of-block CORE is re-broadcast."""
        return self.phase(round_number) == self.k + 1

    def is_agreement_start_round(self, round_number: Round) -> bool:
        """The round in which a block's avalanche batch takes its
        first step: phase ``k + 2`` with the standard overhead, or the
        next block's phase 1 with the fast variant's overhead of 1."""
        if self.overhead == 2:
            return self.phase(round_number) == self.k + 2
        return self.phase(round_number) == 1 and round_number > 1

    def is_block_start(self, round_number: Round) -> bool:
        """Phase 1 — where block ``b > 1`` rebases its CORE."""
        return self.phase(round_number) == 1

    def first_round_of_block(self, block_number: int) -> Round:
        """The actual round at which ``block_number`` begins."""
        if block_number < 1:
            raise ConfigurationError(
                f"block numbers are 1-based, got {block_number}"
            )
        return (block_number - 1) * self.block_length + 1

    def actual_rounds_for(self, simulated_rounds: int) -> Round:
        """Fewest actual rounds to reach ``simulated_rounds`` of progress."""
        return actual_rounds_for(simulated_rounds, self.k, self.overhead)

    def decision_round(self, simulated_rounds: int) -> Round:
        """Alias of :meth:`actual_rounds_for` — where a decision rule fires."""
        return self.actual_rounds_for(simulated_rounds)

    def table(self, rounds: int) -> List[dict]:
        """Rows of Table 1: round, block, prior, phase, simul."""
        return [
            {
                "r": round_number,
                "block": self.block(round_number),
                "prior": self.prior(round_number),
                "phase": self.phase(round_number),
                "simul": self.simul(round_number),
            }
            for round_number in range(1, rounds + 1)
        ]

    def progress_rounds(self, up_to: Round) -> Iterator[Round]:
        """Actual rounds with phase ``<= k``, ascending, through ``up_to``."""
        for round_number in range(1, up_to + 1):
            if self.is_progress_round(round_number):
                yield round_number


class RoundRecovery:
    """Per-receiver round-completion tracking under asynchronous delivery.

    The reduction from asynchrony to synchronized rounds turns the
    global round barrier into a local counting argument: in the
    canonical form every processor consumes exactly one message per
    channel per round (an omission arrives as a detectable
    :data:`~repro.types.BOTTOM`), so a receiver's round-``r`` closed
    message set is complete exactly when ``expected`` deliveries
    stamped round ``r`` have reached it — no clock, no barrier, no
    knowledge of other processors' progress.  This object is that
    argument, executable; the async scheduler
    (:class:`repro.runtime.scheduler.AsyncScheduler`) drives one per
    round, and receivers advance in whatever order their counts
    complete (the round skew docs/runtime.md describes).
    """

    __slots__ = ("expected", "_remaining")

    def __init__(self, expected: int, receivers: Iterable[int]):
        if expected < 1:
            raise ConfigurationError(
                f"expected deliveries per receiver must be >= 1, "
                f"got {expected}"
            )
        self.expected = expected
        self._remaining = {receiver: expected for receiver in receivers}

    def deliver(self, receiver: int) -> bool:
        """Record one delivery; ``True`` iff the receiver's round just
        completed (its state change may fire now, and only now)."""
        remaining = self._remaining[receiver] - 1
        if remaining < 0:
            raise ConfigurationError(
                f"receiver {receiver} was delivered more than "
                f"{self.expected} messages in one round — not a "
                "canonical-form schedule"
            )
        self._remaining[receiver] = remaining
        return remaining == 0

    def complete(self) -> bool:
        """Whether every receiver's round has been recovered."""
        return all(count == 0 for count in self._remaining.values())

    def incomplete_receivers(self) -> List[int]:
        """Receivers still awaiting deliveries, ascending."""
        return sorted(
            receiver
            for receiver, count in self._remaining.items()
            if count
        )
