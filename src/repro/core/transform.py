"""The canonical-form transformation (the paper's headline result).

Any synchronous consensus protocol ``P``, given as an
:class:`repro.core.automaton.AutomatonProtocol`, is transformed in two
steps:

1. **Theorem 2** — the full-information protocol simulates ``P`` with
   the identity scaling function and the recursive reconstruction
   ``f_p`` of :func:`repro.fullinfo.decision.reconstruct_state`;
   composing ``P``'s decision functions with ``f_p`` gives decision
   rules for the full-information protocol
   (:func:`full_information_form`).
2. **Theorem 9** — the compact full-information protocol simulates the
   full-information protocol with scaling function ``simul``; applying
   the same derived decision rules to ``FULL_STATE`` yields the
   communication-efficient canonical form (:func:`canonical_form`).

By Theorem 1 the result terminates whenever ``P`` does and satisfies
every correctness predicate ``P`` satisfies, while using
``O(r * n^(k+3) * log |V|)`` message bits and
``(1 + eps)`` times ``P``'s rounds, ``k = ceil(2/eps)``.
"""

from __future__ import annotations

import dataclasses
from typing import Any, Callable, Optional

from repro.adversary.base import Adversary
from repro.compact.payload import compact_sizer, payload_is_null
from repro.compact.protocol import compact_factory
from repro.core.automaton import AutomatonProtocol
from repro.core.rounds import BlockSchedule, k_for_epsilon
from repro.errors import ConfigurationError
from repro.fullinfo.decision import DerivedDecisionRule
from repro.fullinfo.protocol import (
    full_information_factory,
    full_information_sizer,
)
from repro.runtime.engine import ExecutionResult, run_protocol


@dataclasses.dataclass
class CanonicalForm:
    """The transformed protocol, ready to run.

    ``factory``/``sizer``/``is_null`` plug straight into
    :func:`repro.runtime.engine.run_protocol`; ``deadline`` is the
    actual round by which every correct processor decides.
    """

    source: AutomatonProtocol
    k: int
    overhead: int
    horizon: int
    deadline: int
    factory: Callable
    sizer: Callable[[Any], int]
    is_null: Callable[[Any], bool]

    def run(
        self,
        inputs,
        adversary: Optional[Adversary] = None,
        seed: int = 0,
        record_trace: bool = False,
    ) -> ExecutionResult:
        """Run one execution of the canonical-form protocol."""
        return run_protocol(
            self.factory,
            self.source.config,
            inputs,
            adversary=adversary,
            max_rounds=self.deadline + 1,
            sizer=self.sizer,
            is_null=self.is_null,
            seed=seed,
            record_trace=record_trace,
        )


def _require_horizon(protocol: AutomatonProtocol, horizon: Optional[int]) -> int:
    resolved = horizon if horizon is not None else protocol.rounds_to_decide
    if resolved is None:
        raise ConfigurationError(
            "the source protocol must declare rounds_to_decide (or pass "
            "horizon=) so the transformation knows how many rounds to simulate"
        )
    return resolved


def canonical_form(
    protocol: AutomatonProtocol,
    k: Optional[int] = None,
    epsilon: Optional[float] = None,
    overhead: int = 2,
    horizon: Optional[int] = None,
) -> CanonicalForm:
    """Transform ``protocol`` into its communication-efficient form.

    Exactly one of ``k`` (the block parameter) and ``epsilon`` (the
    admissible round-count inflation) must be given.
    """
    if (k is None) == (epsilon is None):
        raise ConfigurationError("give exactly one of k and epsilon")
    block_parameter = k if k is not None else k_for_epsilon(epsilon, overhead)
    resolved_horizon = _require_horizon(protocol, horizon)
    rule = DerivedDecisionRule(protocol, horizon=resolved_horizon)
    schedule = BlockSchedule(block_parameter, overhead)
    return CanonicalForm(
        source=protocol,
        k=block_parameter,
        overhead=overhead,
        horizon=resolved_horizon,
        deadline=schedule.actual_rounds_for(resolved_horizon),
        factory=compact_factory(
            k=block_parameter,
            value_alphabet=protocol.input_values,
            decision_rule=rule,
            horizon=resolved_horizon,
            overhead=overhead,
        ),
        sizer=compact_sizer(protocol.config, len(set(protocol.input_values))),
        is_null=payload_is_null,
    )


def full_information_form(
    protocol: AutomatonProtocol,
    horizon: Optional[int] = None,
) -> CanonicalForm:
    """Theorem 2 alone: ``protocol`` as a full-information protocol.

    Same decisions as :func:`canonical_form` but with exponential
    communication and no round inflation — the intermediate protocol
    of the two-step transformation, exposed for comparison benchmarks.
    """
    resolved_horizon = _require_horizon(protocol, horizon)
    rule = DerivedDecisionRule(protocol, horizon=resolved_horizon)
    return CanonicalForm(
        source=protocol,
        k=0,
        overhead=0,
        horizon=resolved_horizon,
        deadline=resolved_horizon,
        factory=full_information_factory(
            value_alphabet=protocol.input_values,
            decision_rule=rule,
            horizon=resolved_horizon,
        ),
        sizer=full_information_sizer(
            len(set(protocol.input_values)), protocol.config.n
        ),
        is_null=lambda message: False,
    )
