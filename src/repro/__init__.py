"""repro — reproduction of Coan (PODC 1986).

A communication-efficient canonical form for fault-tolerant
distributed protocols: transform any synchronous consensus protocol
into one with polynomial communication, at a ``(1 + eps)`` round cost.

Public API highlights
---------------------

* :func:`repro.core.transform.canonical_form` — the headline
  transformation,
* :func:`repro.compact.byzantine_agreement.run_compact_byzantine_agreement`
  — Corollary 10's Byzantine agreement protocol, ready to run,
* :mod:`repro.avalanche` — the avalanche agreement primitive,
* :mod:`repro.agreement` — baseline protocols (exponential EIG,
  phase king/queen, Srikanth–Toueg-style witnessed broadcast, Ben-Or,
  Turpin–Coan, crusader, weak, approximate agreement),
* :mod:`repro.runtime` / :mod:`repro.adversary` — the synchronous
  round substrate and fault models everything runs on,
* :mod:`repro.statics` — protolint, the protocol-aware static
  analysis behind ``python -m repro lint`` (see ``docs/statics.md``).
"""

from repro.types import BOTTOM, SystemConfig, is_bottom
from repro.core.rounds import BlockSchedule, block, phase, prior, simul
from repro.core.transform import CanonicalForm, canonical_form, full_information_form
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.runtime.engine import run_protocol

__version__ = "1.0.0"

__all__ = [
    "BOTTOM",
    "SystemConfig",
    "is_bottom",
    "BlockSchedule",
    "block",
    "phase",
    "prior",
    "simul",
    "CanonicalForm",
    "canonical_form",
    "full_information_form",
    "run_compact_byzantine_agreement",
    "run_protocol",
    "__version__",
]
