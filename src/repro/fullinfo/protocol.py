"""Protocol 1: the full-information protocol.

::

    Initialization for processor p:
        STATE <- the initial value of processor p
    Code for processor p in round r:
        1. broadcast STATE
        2. receive MSG_q from processor q for 1 <= q <= n
        3. STATE <- (MSG_1, ..., MSG_n)

A correct round-``r`` message is a depth-``r - 1`` value array.  A
malformed or absent message from a (necessarily faulty) sender is
replaced by the receiver's *own previous state*, which always has the
right shape — the legitimacy of this substitution is exactly what
Theorem 9's Case 3 argues (any well-shaped value array is a message
the faulty processor could have sent).
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Optional, Sequence, Tuple

import repro.obs.core as _obs
from repro.arrays import persist as _persist
from repro.arrays.digest import content_digest, values_fingerprint
from repro.arrays.encoding import MessageSizer
from repro.arrays.store import ArrayStore, InternedArray, shared_store
from repro.arrays.value_array import validate_array
from repro.core.automaton import AutomatonProtocol
from repro.runtime.node import Process, broadcast
from repro.types import BOTTOM, ProcessId, Round, SystemConfig, Value

# Sentinel distinguishing "message rejected" from a legal message that
# happens to be None (None is a perfectly good alphabet value).
_REJECT = object()

# A decision rule examines (state, simulated_round, process_id) and
# returns a value or BOTTOM.
DecisionRule = Callable[[Any, int, ProcessId], Value]

#: Protoflow taint: both receive paths run every incoming message
#: through a legality filter before it can enter STATE.
TAINT_SANITIZERS = {
    "_canonical_legal": (
        "interned fast path: exact depth, exact width n at every "
        "level, every leaf in the alphabet V — anything else is "
        "replaced by the receiver's own previous state (Theorem 9 "
        "Case 3)"
    ),
    "_is_legal_message": (
        "plain-tuple path: validate_array checks the same shape and "
        "alphabet-leaf conditions as the interned path"
    ),
}

#: Protoflow message-size bounds (COM rule family).  ``history`` is
#: the honest answer: Protocol 1 *is* the full-information baseline
#: the compact construction (repro.compact, Theorem 5) exists to fix.
MESSAGE_BOUNDS = {
    "FullInformationProcess": (
        "history",
        "STATE is the depth-r view by definition; the exponential "
        "growth is the paper's motivating problem, compacted by "
        "repro.compact",
    ),
    "FullInformationAutomaton": (
        "history",
        "the Section 3.1 formalisation of the same protocol: "
        "message() relays the entire state",
    ),
}


def _legality_detail(n: int, alphabet: Any) -> Optional[str]:
    """Persistent-cache key prefix for legality verdicts, if stable."""
    alpha_fp = values_fingerprint(alphabet)
    if alpha_fp is None:
        return None
    return f"fullinfo.legality;n={n};alpha={alpha_fp}"


class FullInformationProcess(Process):
    """One processor of Protocol 1 on the synchronous runtime."""

    def __init__(
        self,
        process_id: ProcessId,
        config: SystemConfig,
        input_value: Value,
        value_alphabet: Sequence[Value],
        decision_rule: Optional[DecisionRule] = None,
        horizon: Optional[int] = None,
        intern: bool = True,
    ):
        """
        Parameters
        ----------
        value_alphabet:
            The legal inputs ``V``; received leaves outside it mark a
            message as malformed.
        decision_rule:
            Called after each round with the new state; first
            non-bottom result is decided.  ``None`` runs the exchange
            with no decisions (pure state-building, e.g. under a
            simulation checker).
        horizon:
            If given, the rule is only consulted from this round on
            (saves exponential decision work in earlier rounds).
        intern:
            Hash-cons states through the shared
            :class:`~repro.arrays.store.ArrayStore` (the default).
            States remain tuples — equal, iterable and pickled exactly
            as before — but validation and sizing become O(new nodes)
            per round instead of O(``n ** round``).  ``False`` keeps
            plain tuples (the reference mode the byte-identity tests
            compare against).
        """
        super().__init__(process_id, config)
        self.state: Any = input_value
        self._alphabet = frozenset(value_alphabet)
        self._decision_rule = decision_rule
        self._horizon = horizon
        self.rounds_completed = 0
        self._store: Optional[ArrayStore] = (
            shared_store(config.n) if intern else None
        )
        # Canonical node -> "leaves all in V" verdict, shared across
        # rounds: a subtree vetted at round r is the *same node* when
        # it reappears inside round r + 1 states, so the exponential
        # re-validation the plain path pays every round collapses to
        # one dictionary hit.
        self._leaf_verdicts: Dict[Any, bool] = {}
        # Persistent-cache key prefix for those verdicts: legality is
        # a pure function of (typed structure, n, V), so a verdict
        # keyed by content digest under the alphabet fingerprint is
        # valid across processes and runs.  None when the alphabet has
        # unstable members (caching then simply stays out of the way).
        self._legality_detail: Optional[str] = (
            None
            if self._store is None
            else _legality_detail(config.n, self._alphabet)
        )

    def outgoing(self, round_number: Round) -> Dict[ProcessId, Any]:
        return broadcast(self.state, self.config)

    def receive(self, round_number: Round, incoming: Dict[ProcessId, Any]) -> None:
        expected_depth = round_number - 1
        store = self._store
        components = []
        for sender in self.config.process_ids:
            if store is not None:
                message = self._canonical_legal(
                    incoming[sender], expected_depth
                )
                if message is _REJECT:
                    message = self.state  # own previous state: right shape
            else:
                message = incoming[sender]
                if not self._is_legal_message(message, expected_depth):
                    message = self.state
            components.append(message)
        state = tuple(components)
        self.state = store.intern(state) if store is not None else state
        self.rounds_completed = round_number
        self._maybe_decide(round_number)

    def _canonical_legal(self, message: Any, expected_depth: int) -> Any:
        """The interned legal message, or :data:`_REJECT`.

        A message that is already a canonical node of the shared store
        (the broadcast common case: the sender interned it last round)
        validates in O(1) metadata checks plus one verdict-cache hit.
        Plain tuples from an adversary pay one intern walk — shape
        validation included — and then join the fast path for every
        later round they are replayed in.
        """
        if expected_depth == 0:
            # Depth-0 arrays are bare scalars from V.
            if isinstance(message, tuple) or not self._leaf_ok(message):
                return _REJECT
            return message
        store = self._store
        assert store is not None  # caller guards
        if type(message) is InternedArray and message.store is store:
            node = message
        else:
            maybe = store.try_intern(message)
            if maybe is None:
                return _REJECT  # scalar, ragged, wrong-n or unhashable
            node = maybe
        if node.depth != expected_depth:
            return _REJECT
        verdict = self._leaf_verdicts.get(node.key_token)
        observer = _obs.ACTIVE
        if verdict is None:
            verdict = self._persisted_verdict(node)
        if verdict is None:
            verdict = all(
                self._leaf_ok(leaf) for _, leaf in node.leaves_unique
            )
            self._leaf_verdicts[node.key_token] = verdict
            self._record_verdict(node, verdict)
            if observer is not None:
                observer.count("fullinfo.legality.miss")
        elif observer is not None:
            observer.count("fullinfo.legality.hit")
        return node if verdict else _REJECT

    def _persisted_verdict(self, node: InternedArray) -> Optional[bool]:
        """Cross-run legality verdict, or ``None`` to compute afresh.

        A bool in the persistent cache under this process's alphabet
        fingerprint and the node's content digest was computed by the
        same pure predicate in some earlier run; anything else (absent
        entry, unstable node, poisoned value) falls through to
        recomputation.
        """
        detail = self._legality_detail
        if detail is None:
            return None
        cache = _persist.active()
        if cache is None:
            return None
        digest = content_digest(node)
        if digest is None:
            return None
        stored = cache.map_get(detail, digest.hex())
        if not isinstance(stored, bool):
            return None
        self._leaf_verdicts[node.key_token] = stored
        return stored

    def _record_verdict(self, node: InternedArray, verdict: bool) -> None:
        detail = self._legality_detail
        if detail is None:
            return
        cache = _persist.active()
        if cache is None:
            return
        digest = content_digest(node)
        if digest is not None:
            cache.map_put(detail, digest.hex(), verdict)

    def _is_legal_message(self, message: Any, expected_depth: int) -> bool:
        if message is BOTTOM:
            return False
        return validate_array(
            message,
            self.config.n,
            depth=expected_depth,
            leaf_ok=self._leaf_ok,
        )

    def _leaf_ok(self, leaf: Any) -> bool:
        try:
            return leaf in self._alphabet
        except TypeError:  # unhashable junk from a Byzantine sender
            return False

    def _maybe_decide(self, round_number: Round) -> None:
        if self.has_decided() or self._decision_rule is None:
            return
        if self._horizon is not None and round_number < self._horizon:
            return
        value = self._decision_rule(self.state, round_number, self.process_id)
        if value is not BOTTOM:
            self.decide(value, round_number)

    def snapshot(self) -> Any:
        return {"state": self.state, "decision": self.decision}


def full_information_factory(
    value_alphabet: Sequence[Value],
    decision_rule: Optional[DecisionRule] = None,
    horizon: Optional[int] = None,
    intern: bool = True,
):
    """A run_protocol factory for Protocol 1."""

    def factory(
        process_id: ProcessId, config: SystemConfig, input_value: Value
    ) -> FullInformationProcess:
        return FullInformationProcess(
            process_id,
            config,
            input_value,
            value_alphabet=value_alphabet,
            decision_rule=decision_rule,
            horizon=horizon,
            intern=intern,
        )

    return factory


def full_information_sizer(value_alphabet_size: int, n: int) -> Callable[[Any], int]:
    """Exact bit measure for Protocol 1 traffic (all leaves are values)."""
    sizer = MessageSizer(value_alphabet_size, n)
    return sizer.measure_value_array


class FullInformationAutomaton(AutomatonProtocol):
    """Protocol 1 in the Section 3.1 automaton formalism.

    Used by the Theorem 2 tests: the identity scaling function and the
    recursive ``f_p`` of :func:`repro.fullinfo.decision.reconstruct_state`
    witness that this protocol simulates any consensus protocol.
    """

    def __init__(
        self,
        config: SystemConfig,
        input_values: Sequence[Value],
        decision_rule: Optional[DecisionRule] = None,
        horizon: Optional[int] = None,
    ):
        super().__init__(config, input_values)
        self._decision_rule = decision_rule
        self._horizon = horizon
        self._rounds_seen: Dict[int, int] = {}

    def message(self, sender: ProcessId, receiver: ProcessId, state: Any) -> Any:
        return state  # broadcast the entire state

    def transition(self, process_id: ProcessId, messages: Tuple[Any, ...]) -> Any:
        return tuple(messages)

    def decision(self, process_id: ProcessId, state: Any) -> Value:
        if self._decision_rule is None:
            return BOTTOM
        from repro.arrays.value_array import array_depth

        try:
            depth = array_depth(state, self.config.n)
        except Exception:
            return BOTTOM
        if self._horizon is not None and depth < self._horizon:
            return BOTTOM
        return self._decision_rule(state, depth, process_id)
