"""The full-information protocol (Protocol 1) and its decision rules.

In the full-information protocol each processor at each round
broadcasts its entire state, receives one message from each processor,
and forms its new state as the ordered collection of messages
received.  After ``r`` rounds a state is a depth-``r`` value array —
exponentially large, which is exactly the cost the compact protocol
removes.

* :mod:`repro.fullinfo.protocol` — Protocol 1 on the runtime, plus its
  automaton form,
* :mod:`repro.fullinfo.eig` — the exponential-information-gathering
  tree view of a full-information state,
* :mod:`repro.fullinfo.decision` — Theorem 2's recursive
  reconstruction ``f_p`` (any protocol's state from a full-information
  state) and the classic distinct-relay-chain Byzantine decision rule
  that turns ``t + 1`` rounds of full information into Byzantine
  agreement for ``n > 3t``.
"""

from repro.fullinfo.protocol import (
    FullInformationAutomaton,
    FullInformationProcess,
    full_information_factory,
)
from repro.fullinfo.eig import EIGView
from repro.fullinfo.decision import (
    DerivedDecisionRule,
    eig_byzantine_decision,
    reconstruct_state,
)
from repro.fullinfo.interactive import (
    interactive_consistency_decision,
    make_interactive_consistency_rule,
)

__all__ = [
    "FullInformationAutomaton",
    "FullInformationProcess",
    "full_information_factory",
    "EIGView",
    "DerivedDecisionRule",
    "eig_byzantine_decision",
    "reconstruct_state",
    "interactive_consistency_decision",
    "make_interactive_consistency_rule",
]
