"""Decision rules over full-information states.

Two constructions from the paper live here.

**Theorem 2's simulation functions.**  :func:`reconstruct_state`
computes ``f_p``: the state an arbitrary protocol ``P`` would have
reached, from a full-information state alone::

    f_p(s) = s                                          if s in V
    f_p(s) = delta_p(mu_1p(f_1(s_1)), ..., mu_np(f_n(s_n)))  otherwise

Composing a protocol's own decision function with ``f_p`` yields a
decision rule for the (compact) full-information protocol that, by
Theorem 1, inherits the original protocol's correctness predicate —
that composition is :class:`DerivedDecisionRule`.

**The exponential Byzantine agreement decision rule** (Corollary 10
cites Lamport, Shostak and Pease [13]).  Applied to a depth-``t + 1``
full-information state with ``n > 3t``, :func:`eig_byzantine_decision`
performs the classic recursive strict-majority resolution over relay
chains with *distinct* labels (repeat-label chains carry no extra
power and are excluded, as in the standard EIG analysis):

* a full-length chain resolves to its recorded value,
* an internal chain resolves to the strict majority of its one-relayer
  extensions, or the default value when no strict majority exists,
* the decision is the resolution of the empty chain.

Malformed leaves (a Byzantine processor's garbage surviving into a
claim about itself) are normalised to the default value first.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, List, Optional, Sequence, Tuple

import numpy as np

import repro.obs.core as _obs
from repro.arrays import flat as _flat
from repro.arrays import persist as _persist
from repro.arrays.digest import (
    content_digest,
    decode_value,
    encode_value,
    value_digest,
    values_fingerprint,
)
from repro.arrays.store import InternedArray
from repro.arrays.value_array import array_depth, unique_leaves
from repro.core.automaton import AutomatonProtocol
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, ProcessId, Value

Chain = Tuple[ProcessId, ...]


def reconstruct_state(
    protocol: AutomatonProtocol,
    process_id: ProcessId,
    state: Any,
    _memo: Optional[Dict[Tuple[ProcessId, Any], Any]] = None,
) -> Any:
    """Theorem 2's ``f_p``: protocol ``P``'s state from full information.

    ``state`` is a depth-``i`` value array; the result is the state
    processor ``process_id`` would hold after ``i`` rounds of ``P`` in
    the execution the array describes.  Shared subtrees are memoised —
    without it the recursion revisits the same sub-array once per
    occurrence, and full-information arrays are full of repeats.
    """
    if _memo is None:
        _memo = {}
    if not isinstance(state, tuple):
        return state  # an element of V: an initial state
    key: Tuple[ProcessId, Any]
    try:
        key = (process_id, state)
        if key in _memo:
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("fullinfo.reconstruct.hit")
            return _memo[key]
    except TypeError:  # unhashable leaf smuggled in; skip memoisation
        key = None  # type: ignore[assignment]
    messages = tuple(
        protocol.message(
            sender,
            process_id,
            reconstruct_state(protocol, sender, state[sender - 1], _memo),
        )
        for sender in protocol.config.process_ids
    )
    result = protocol.transition(process_id, messages)
    if key is not None:
        _memo[key] = result
        observer = _obs.ACTIVE
        if observer is not None:
            observer.count("fullinfo.reconstruct.miss")
    return result


class DerivedDecisionRule:
    """``gamma'_p(s) = gamma_p(f_p(s))`` — Theorem 1's decision functions.

    A callable usable as the ``decision_rule`` of the full-information
    and compact full-information processes.  ``horizon`` suppresses
    evaluation before the round at which the simulated protocol is
    known to decide (evaluating ``f_p`` is exponential, so it should
    run as few times as possible).
    """

    def __init__(
        self,
        protocol: AutomatonProtocol,
        horizon: Optional[int] = None,
        persist_key: Optional[str] = None,
    ):
        self.protocol = protocol
        self.horizon = (
            horizon if horizon is not None else protocol.rounds_to_decide
        )
        # Persistent across calls: a round-``r + 1`` state contains the
        # round-``r`` states as sub-arrays (canonically shared nodes
        # when interning is on), so reconstruction of a new round only
        # pays for the top layer.  Sound because ``f_p`` is a pure
        # function of (process, sub-array) for a fixed protocol.
        self._memo: Dict[Tuple[ProcessId, Any], Any] = {}
        # Cross-run decision memo, opt-in: ``gamma_p(f_p(s))`` is a
        # pure function of (protocol, process, typed structure), but a
        # protocol has no intrinsic stable identity — the caller must
        # assert one.  Passing ``persist_key`` declares that every run
        # using this key builds an equivalent protocol, which makes a
        # decision keyed (key, n, process, content digest) valid in the
        # persistent cache.
        self.persist_key = persist_key
        self._persist_detail: Optional[str] = (
            None
            if persist_key is None
            else (
                f"derived.decision;key={persist_key};"
                f"n={protocol.config.n}"
            )
        )

    def __call__(self, state: Any, simulated_round: int, process_id: ProcessId) -> Value:
        if self.horizon is not None and simulated_round < self.horizon:
            return BOTTOM
        detail = self._persist_detail
        cache = _persist.active() if detail is not None else None
        cache_key: Optional[str] = None
        if cache is not None and type(state) is InternedArray:
            digest = content_digest(state)
            if digest is not None:
                cache_key = f"{digest.hex()}:{process_id}"
                assert detail is not None  # cache implies detail
                stored = cache.map_get(detail, cache_key)
                if stored is not _persist.MISSING:
                    try:
                        return decode_value(stored)
                    except (ValueError, LookupError, TypeError):
                        pass  # poisoned entry: recompute
        reconstructed = reconstruct_state(
            self.protocol, process_id, state, self._memo
        )
        value = self.protocol.decision(process_id, reconstructed)
        if cache is not None and cache_key is not None and detail is not None:
            encoded = encode_value(value)
            if encoded is not None:
                cache.map_put(detail, cache_key, encoded)
        return value


def eig_byzantine_decision(
    state: Any,
    n: int,
    t: int,
    process_id: ProcessId,
    default: Value,
    alphabet: Optional[Sequence[Value]] = None,
) -> Value:
    """Resolve a depth-``t + 1`` full-information state to a decision.

    Parameters
    ----------
    state:
        The processor's full-information state after ``t + 1`` rounds.
    default:
        The value adopted where no strict majority exists; all correct
        processors must use the same default.
    alphabet:
        When given, leaves outside it are replaced by ``default``
        before resolution (defence against garbage leaves).
    """
    with _obs.span("eig.decision"):
        # The resolution is a pure function of (typed structure, n, t,
        # default, alphabet) — process_id does not enter it — so a
        # content-digested outcome from an earlier run is the outcome.
        cache = _persist.active()
        key: Optional[Tuple[str, str]] = None
        if cache is not None and type(state) is InternedArray:
            key = _eig_persist_key(state, n, t, default, alphabet)
            if key is not None:
                stored = cache.map_get(key[0], key[1])
                if stored is not _persist.MISSING:
                    try:
                        return decode_value(stored)
                    except (ValueError, LookupError, TypeError):
                        pass  # poisoned entry: recompute
        value = _resolve_eig_decision(
            state, n, t, process_id, default, alphabet
        )
        if cache is not None and key is not None:
            encoded = encode_value(value)
            if encoded is not None:
                cache.map_put(key[0], key[1], encoded)
        return value


def _eig_persist_key(
    state: InternedArray,
    n: int,
    t: int,
    default: Value,
    alphabet: Optional[Sequence[Value]],
) -> Optional[Tuple[str, str]]:
    """(fingerprint detail, key) for a persistable EIG decision.

    ``None`` whenever any parameter is unstable under content
    digesting — the cache then never sees the call.  A hit can only be
    served for a state whose recorded resolution succeeded, so the
    depth-validation error path is preserved bit-for-bit (equal
    digests imply equal depth).
    """
    state_digest = content_digest(state)
    if state_digest is None:
        return None
    default_digest = value_digest(default)
    if default_digest is None:
        return None
    if alphabet is None:
        alpha_part = "-"
    else:
        alpha_fp = values_fingerprint(alphabet)
        if alpha_fp is None:
            return None
        alpha_part = alpha_fp
    detail = (
        f"eig.decision;n={n};t={t};"
        f"default={default_digest.hex()};alpha={alpha_part}"
    )
    return detail, state_digest.hex()


def _resolve_eig_decision(
    state: Any,
    n: int,
    t: int,
    process_id: ProcessId,
    default: Value,
    alphabet: Optional[Sequence[Value]],
) -> Value:
    depth = array_depth(state, n)
    if depth != t + 1:
        raise ProtocolViolation(
            f"EIG decision needs a depth-{t + 1} state, got depth {depth}"
        )
    legal = frozenset(alphabet) if alphabet is not None else None

    def normalise(leaf: Any) -> Value:
        if legal is None:
            return leaf
        try:
            return leaf if leaf in legal else default
        except TypeError:
            return default

    # All leaves equal (O(1) to see on an interned state): every full
    # chain records the one normalised value, so by induction every
    # node — each has at least one child since ``depth <= n`` — holds
    # it as a strict (unanimous) majority, and so does the root.
    if isinstance(state, InternedArray) and len(state.leaves_unique) == 1:
        return normalise(state.leaves_unique[0][1])

    # Precompute the deterministic vote order once: every vote a node
    # can tally is a normalised leaf or the default.  The old code
    # re-sorted each node's tally by repr; the tie-break provably
    # cannot change the decision (a strict-majority winner is unique,
    # and without one the node resolves to ``default``), but ranking
    # keeps ``best_value`` selection bit-for-bit identical.
    candidates: Dict[Hashable, None] = {default: None}
    try:
        for _, leaf in unique_leaves(state):
            candidates[normalise(leaf)] = None
    except TypeError:  # unhashable leaf with no alphabet to launder it
        pass
    ordered = sorted(candidates, key=repr)
    rank = {vote: position for position, vote in enumerate(ordered)}
    unranked = len(rank)

    # Flat-kernel sweep: the same resolution as one numpy descent +
    # per-level bincount over the interned tables (repro.arrays.flat).
    # Falls back to the reference sweep whenever byte-identity cannot
    # be guaranteed by construction (see _flat_sweep_index).
    if (
        type(state) is InternedArray
        and depth <= n
        and _flat.flat_enabled()
    ):
        winner = _flat_sweep_index(state, normalise, ordered, rank, default)
        observer = _obs.ACTIVE
        if winner is not None:
            if observer is not None:
                observer.count("eig.kernel.flat")
            return ordered[winner]
        if observer is not None:
            observer.count("eig.kernel.fallback")

    # Chains are reverse-chronological array paths with distinct
    # labels; a chain's resolution is Lynch's newval on the
    # corresponding EIG node.  Computed bottom-up: one depth-first
    # descent of the (structurally shared) array reads every
    # full-length chain's leaf at O(1) amortized per chain — chains
    # sharing an array-path prefix share the descent — then each
    # shrink pass tallies length-``l + 1`` resolutions under their
    # length-``l`` suffix, since extending a chain *prepends* the
    # later relayer in array-path order.
    resolved: Dict[Chain, Value] = {}

    def record_leaves(node: Any, path: Chain) -> None:
        if len(path) == depth:
            resolved[path] = normalise(node)
            return
        for relayer in range(1, n + 1):
            if relayer in path:
                continue
            record_leaves(node[relayer - 1], path + (relayer,))

    record_leaves(state, ())

    for _ in range(depth):
        tallies: Dict[Chain, Dict[Hashable, int]] = {}
        for chain, vote in resolved.items():
            suffix = chain[1:]
            tally = tallies.get(suffix)
            if tally is None:
                tally = tallies[suffix] = {}
            tally[vote] = tally.get(vote, 0) + 1
        resolved = {}
        for suffix, tally in tallies.items():
            children = n - len(suffix)
            best_value, best_count = default, 0
            for vote, count in tally.items():
                if count > best_count or (
                    count == best_count
                    and best_count > 0
                    and rank.get(vote, unranked) < rank.get(best_value, unranked)
                ):
                    best_value, best_count = vote, count
            resolved[suffix] = (
                best_value if best_count * 2 > children else default
            )

    return resolved[()]


#: Leaf types the flat sweep handles.  Exact types only (no
#: subclasses): these are the builtins whose equality, hash and repr
#: are all consistent with each other, which the collision check in
#: :func:`_flat_sweep_index` relies on.
_FLAT_VOTE_TYPES = (bool, int, float, str, bytes, type(None))

_MISSING = object()


def _flat_sweep_index(
    state: InternedArray,
    normalise: Callable[[Any], Value],
    ordered: List[Hashable],
    rank: Dict[Hashable, int],
    default: Value,
) -> Optional[int]:
    """``ordered``-index of the flat-kernel winner, or ``None``.

    ``None`` sends the caller to the reference sweep.  That happens
    when a vote is not a plain scalar builtin, or when two candidate
    objects are *value-equal but distinguishable* (class or repr
    differs — ``True`` vs ``1``, ``0.0`` vs ``-0.0``): the reference
    tallies merge such votes under whichever object a chain records
    first, an order the tables do not track, so only the reference
    sweep reproduces those bytes.
    """
    votes = [default]
    for _, leaf in state.leaves_unique:
        votes.append(normalise(leaf))
    representative: Dict[Any, Any] = {}
    for vote in votes:
        if type(vote) not in _FLAT_VOTE_TYPES:
            return None
        prior = representative.get(vote, _MISSING)
        if prior is _MISSING:
            representative[vote] = vote
        elif prior.__class__ is not vote.__class__ or repr(prior) != repr(vote):
            return None
    tables = _flat.tables_for(state.store)
    tables.sync()
    default_index = rank[default]
    vote_of_code = np.full(
        tables.leaf_alphabet_size, default_index, dtype=np.int64
    )
    for position, (typed_class, leaf) in enumerate(state.leaves_unique):
        code = tables.code_of((typed_class, leaf))
        assert code is not None  # sync() mirrored every leaf of state
        vote_of_code[code] = rank[votes[position + 1]]
    return _flat.eig_sweep(state, vote_of_code, len(ordered), default_index)


def make_eig_decision_rule(
    t: int, default: Value, alphabet: Optional[Sequence[Value]] = None
) -> Callable[[Any, int, ProcessId], Value]:
    """A ``DecisionRule`` that fires at simulated round ``t + 1``."""

    def rule(state: Any, simulated_round: int, process_id: ProcessId) -> Value:
        if simulated_round < t + 1:
            return BOTTOM
        if isinstance(state, tuple):
            n = len(state)
        else:
            return BOTTOM
        return eig_byzantine_decision(
            state, n, t, process_id, default=default, alphabet=alphabet
        )

    return rule
