"""Interactive consistency over full-information states.

Interactive consistency (Pease, Shostak, Lamport) asks the correct
processors to agree on an *n-vector*, one component per processor,
such that (a) all correct processors hold the same vector and (b) the
component for every correct processor ``q`` equals ``q``'s input.

It is the original formulation Byzantine agreement descends from, and
it falls straight out of this library's machinery: a ``t + 1``-round
full-information state contains one EIG tree per *source*, and
resolving each source's tree with the distinct-relay-chain rule yields
the vector.  Because it is just another decision function over
full-information states, it runs unchanged through the compact
protocol — a third application of the canonical form alongside
Byzantine agreement and approximate agreement.

Chain orientation matches :mod:`repro.fullinfo.decision`: array paths
are reverse chronological, so the chains of source ``q`` are the paths
*ending* in ``q``, rooted at the length-1 path ``(q,)``.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Hashable, Optional, Sequence, Tuple

from repro.arrays.value_array import array_depth, leaf_at
from repro.errors import ProtocolViolation
from repro.types import BOTTOM, ProcessId, Value

Chain = Tuple[ProcessId, ...]


def interactive_consistency_decision(
    state: Any,
    n: int,
    t: int,
    default: Value,
    alphabet: Optional[Sequence[Value]] = None,
) -> Tuple[Value, ...]:
    """Resolve a depth-``t + 1`` state into the agreed n-vector.

    Component ``q`` is the resolution of source ``q``'s EIG tree —
    the distinct-label recursion of
    :func:`repro.fullinfo.decision.eig_byzantine_decision`, rooted at
    the path ``(q,)`` instead of the empty path.
    """
    depth = array_depth(state, n)
    if depth != t + 1:
        raise ProtocolViolation(
            f"interactive consistency needs a depth-{t + 1} state, got "
            f"depth {depth}"
        )
    legal = frozenset(alphabet) if alphabet is not None else None

    def normalise(leaf: Any) -> Value:
        if legal is None:
            return leaf
        try:
            return leaf if leaf in legal else default
        except TypeError:
            return default

    memo: Dict[Chain, Value] = {}

    def resolve(path: Chain) -> Value:
        if path in memo:
            return memo[path]
        if len(path) == depth:
            value = normalise(leaf_at(state, path))
            memo[path] = value
            return value
        tally: Dict[Hashable, int] = {}
        children = 0
        for relayer in range(1, n + 1):
            if relayer in path:
                continue
            children += 1
            vote = resolve((relayer,) + path)
            tally[vote] = tally.get(vote, 0) + 1
        best_value, best_count = default, 0
        for vote, count in sorted(tally.items(), key=lambda item: repr(item[0])):
            if count > best_count:
                best_value, best_count = vote, count
        value = best_value if best_count * 2 > children else default
        memo[path] = value
        return value

    return tuple(resolve((source,)) for source in range(1, n + 1))


def make_interactive_consistency_rule(
    t: int,
    default: Value,
    alphabet: Optional[Sequence[Value]] = None,
) -> Callable[[Any, int, ProcessId], Value]:
    """A ``DecisionRule`` deciding the full vector at round ``t + 1``.

    The decided "value" is the n-tuple itself; agreement then means
    all correct processors decide identical vectors.
    """

    def rule(state: Any, simulated_round: int, process_id: ProcessId) -> Value:
        if simulated_round < t + 1:
            return BOTTOM
        if not isinstance(state, tuple):
            return BOTTOM
        return interactive_consistency_decision(
            state, len(state), t, default=default, alphabet=alphabet
        )

    return rule
