"""The exponential-information-gathering (EIG) view of a state.

A full-information state after ``r`` rounds is a depth-``r`` value
array.  Read as a tree, the path ``(q_1, ..., q_k)`` from the root
means: "``q_1`` said (in the newest round) that ``q_2`` said (one
round earlier) that ... that ``q_k`` said ...".  Paths therefore run
in *reverse chronological* order: the first component is the most
recent relayer, the last is the claim's origin.

Classic EIG presentations label nodes with *chronological* relay
chains (source first).  :class:`EIGView` exposes both addressings: raw
array paths, and ``val(sigma)`` for chronological chains, including
the chains a processor itself observed in earlier rounds (recoverable
through its self-components — the paper notes a processor "can send
any required information in a message to itself").
"""

from __future__ import annotations

from typing import Any, Iterator, Sequence, Tuple

from repro.arrays.value_array import array_depth, iter_paths, leaf_at
from repro.errors import ProtocolViolation
from repro.types import ProcessId

Chain = Tuple[ProcessId, ...]


class EIGView:
    """Read-only tree view over one processor's full-information state."""

    def __init__(self, state: Any, n: int, owner: ProcessId):
        self.state = state
        self.n = n
        self.owner = owner
        self.depth = array_depth(state, n)

    # -- raw array addressing ------------------------------------------------

    def subtree(self, path: Chain) -> Any:
        """The sub-array at a reverse-chronological ``path``."""
        return leaf_at(self.state, path)

    def leaf(self, path: Chain) -> Any:
        """The scalar at a full-length ``path``."""
        if len(path) != self.depth:
            raise ProtocolViolation(
                f"leaf path must have length {self.depth}, got {len(path)}"
            )
        return leaf_at(self.state, path)

    def leaves(self) -> Iterator[Tuple[Chain, Any]]:
        """All (path, leaf) pairs — ``n ** depth`` of them."""
        for path in iter_paths(self.n, self.depth):
            yield path, leaf_at(self.state, path)

    # -- chronological chain addressing ---------------------------------------

    def val(self, sigma: Sequence[ProcessId]) -> Any:
        """The value of chronological relay chain ``sigma``.

        ``sigma = (i_1, ..., i_k)`` reads "``i_1``'s round-1 claim as
        relayed by ``i_2`` at round 2, ..., by ``i_k`` at round k".
        For ``k < depth`` the value is what the owner itself received
        at round ``k``, recovered through the owner's
        ``depth - k`` self-components.
        """
        sigma = tuple(sigma)
        if not 1 <= len(sigma) <= self.depth:
            raise ProtocolViolation(
                f"chain length must be in 1..{self.depth}, got {len(sigma)}"
            )
        padding = (self.owner,) * (self.depth - len(sigma))
        path = padding + tuple(reversed(sigma))
        return leaf_at(self.state, path)

    def distinct_chains(self, length: int) -> Iterator[Chain]:
        """All chronological chains of ``length`` with distinct labels."""

        def extend(prefix: Chain) -> Iterator[Chain]:
            if len(prefix) == length:
                yield prefix
                return
            for process_id in range(1, self.n + 1):
                if process_id not in prefix:
                    yield from extend(prefix + (process_id,))

        yield from extend(())
