"""Hash-consed value arrays: a structural-sharing DAG kernel.

A full-information state after ``r`` rounds is a depth-``r`` nested
tuple with ``n ** r`` leaves — but because the protocol *broadcasts*,
those trees are overwhelmingly shared substructure: the same sub-array
object appears in every receiver's state.  The tree is really a small
DAG, and every per-round cost that walks the tree (shape validation,
bit sizing, reconstruction) is exponentially redundant work.

This module makes the DAG explicit.  An :class:`ArrayStore` *interns*
(hash-conses) well-shaped arrays into canonical :class:`InternedArray`
nodes — one object per distinct typed structure — carrying precomputed
metadata:

* ``depth`` — the array dimension (shape is validated at intern time,
  so holding an ``InternedArray`` *is* a proof of uniform shape);
* ``leaf_count`` — ``n ** depth``;
* ``leaves_unique`` — the distinct typed leaves, in first-occurrence
  order (value alphabets are small, so this stays tiny even for
  astronomically large trees);
* ``defined`` — whether no leaf is :data:`repro.types.BOTTOM`;
* a cached structural hash, making dictionary lookups O(1) instead of
  O(``n ** depth``);
* ``key_token`` — a unique identity token for memo caches that must
  distinguish leaf *types* (``True`` vs ``1``), which tuple equality
  does not.

Interning is **semantically invisible**: an ``InternedArray`` is a
``tuple`` subclass, so it compares, iterates, unpacks, hashes and
prints exactly like the plain nested tuple it canonicalises, and it
*pickles as a plain tuple* (see :meth:`InternedArray.__reduce__`), so
checkpoints, traces and the parallel sweep executor observe identical
bytes.

Leaf types are part of the intern key: ``(True, True)`` and ``(1, 1)``
are tuple-equal but are kept as *distinct* canonical nodes because bit
accounting charges a bool as a value and a small int as a processor
index.  Two interned nodes are therefore identical (``is``) iff they
have equal typed structure — which is what makes ``key_token`` a sound
cache key for typed measurements.

Byzantine garbage (ragged tuples, wrong-length levels, unhashable
leaves) fails interning with :class:`~repro.errors.ProtocolViolation`
and never becomes a canonical node; use :meth:`ArrayStore.try_intern`
for the defensive entry points.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

import repro.obs.core as _obs
from repro.errors import ProtocolViolation
from repro.types import is_bottom

#: A distinct typed leaf: ``(type(leaf), leaf)``.  The second element
#: is the original leaf object, so predicates see its true type.
TypedLeaf = Tuple[type, Any]

# Functions that maintain the process-wide shared-store registry.  The
# registry is hash-consing state, not protocol state: canonical nodes
# are value-equal to the tuples they replace, so which store produced a
# node can never alter a protocol-visible outcome; the registry only
# controls how much structure is shared (and `clear_shared_stores`
# exists so tests and long-lived services can drop it wholesale).
PURITY_EXEMPT = {
    "shared_store": (
        "memoises one ArrayStore per n in a module-global registry so "
        "every processor of an execution shares one canonical-node "
        "pool; nodes are value-equal to the tuples they replace, so "
        "the shared state is observationally pure"
    ),
    "clear_shared_stores": (
        "drops the module-global registry (the inverse of "
        "shared_store); exists precisely so the impure cache can be "
        "reset between unrelated workloads; records the high-water "
        "mark first so the peak survives the reset"
    ),
    "shared_store_stats": (
        "reads the registry and maintains the module-level high-water "
        "mark; pure monitoring of the observationally-pure cache"
    ),
    "observe_shared_stores": (
        "forwards shared_store_stats to the active observer's gauges "
        "(nondeterministic section; never protocol-visible)"
    ),
    "release_shared_stores": (
        "the one between-workload lifecycle helper: records the "
        "registry gauges, flushes persistent-cache deltas, then drops "
        "the registry — composing three observationally-pure steps"
    ),
}


class InternedArray(Tuple[Any, ...]):
    """A canonical, shape-validated array node produced by a store.

    Never construct one directly — only :meth:`ArrayStore.intern`
    does, which is what guarantees the canonicality invariant (one
    object per distinct typed structure per store) that every fast
    path in :mod:`repro.arrays` relies on.
    """

    # tuple subclasses cannot carry nonempty __slots__; metadata lives
    # in the instance dict, paid once per *unique* node.
    depth: int
    leaf_count: int
    leaves_unique: Tuple[TypedLeaf, ...]
    defined: bool
    key_token: object
    store: "ArrayStore"
    _hash: int
    # Stable structural digest, memoised lazily by
    # repro.arrays.digest.content_digest (None = unstable leaves).
    # key_token distinguishes typed structure within this process;
    # the content digest is its cross-process, cross-kernel twin.
    _content_digest: Optional[bytes]

    def __hash__(self) -> int:
        # The standard tuple hash, cached: children are canonical
        # nodes whose hashes are themselves cached, so computing it
        # costs O(n) once per unique node instead of O(n ** depth)
        # per lookup.
        return self._hash

    def __reduce__(self) -> Tuple[Any, ...]:
        # Pickle (and deepcopy) as the plain tuple this node stands
        # for.  Children reduce recursively, so checkpoints, traces
        # and pooled sweep results carry ordinary nested tuples and
        # stay byte-compatible with un-interned runs.
        return (tuple, (tuple(self),))


class ArrayStore:
    """An interning pool of canonical array nodes for one system size.

    Every node in a store has exactly ``n`` components at every level,
    so membership doubles as a shape certificate.  Stores only ever
    *grow* — canonical nodes are immutable and never replaced — which
    is what makes identity-keyed memo caches (sizing, validation
    verdicts, expansion results) safe across rounds and executions.
    """

    def __init__(self, n: int):
        if n < 1:
            raise ValueError(f"store width must be positive, got {n}")
        self.n = n
        # Typed structure key -> the canonical node.
        self._nodes: Dict[Tuple[Any, ...], InternedArray] = {}
        # The same nodes in intern order (children always precede
        # parents): the append-only feed the flat-kernel mirror
        # (repro.arrays.flat) syncs from incrementally.
        self._order: List[InternedArray] = []
        # The store's FlatTables mirror, attached lazily by
        # repro.arrays.flat.tables_for (typed Any: flat imports this
        # module, not the other way around).
        self.flat_tables: Optional[Any] = None
        # Cross-run persistence bookkeeping (watermark + digest index),
        # attached lazily by repro.arrays.persist under the same
        # one-way import rule as flat_tables.
        self.persist_state: Optional[Any] = None

    def __len__(self) -> int:
        """Number of unique canonical nodes interned so far."""
        return len(self._nodes)

    def interned_nodes(self) -> List[InternedArray]:
        """Every canonical node, in intern (child-before-parent) order.

        The returned list is the store's own append-only record —
        treat it as read-only.  Index ``i`` is stable forever, which
        is what lets incremental consumers resume from where they
        stopped.
        """
        return self._order

    def intern(self, array: Any) -> Any:
        """The canonical form of ``array``; scalars pass through.

        Raises
        ------
        ProtocolViolation
            If ``array`` is not a well-shaped ``n``-ary array (ragged,
            wrong-length level) or contains an unhashable leaf.  No
            malformed node is ever added to the store (well-shaped
            *sub*-arrays of a malformed array are, harmlessly: they
            are valid nodes in their own right).
        """
        if not isinstance(array, tuple):
            return array
        return self._intern_node(array, {})

    def try_intern(self, array: Any) -> Optional[InternedArray]:
        """Like :meth:`intern` for tuples, but ``None`` on garbage.

        The defensive entry point for anything received from a
        possibly faulty sender.  ``array`` must be a tuple (scalars
        have no canonical form; callers handle them first).
        """
        if not isinstance(array, tuple):
            return None
        try:
            return self._intern_node(array, {})
        except ProtocolViolation:
            return None

    def _intern_node(
        self,
        node: Tuple[Any, ...],
        seen: Dict[int, InternedArray],
    ) -> InternedArray:
        """Recursive intern with a per-call identity memo.

        ``seen`` maps ``id`` of already-walked plain sub-tuples to
        their canonical nodes, so a plain tree that is secretly a DAG
        (the normal case: broadcast states share sub-objects) is
        walked in O(unique objects), not O(tree).  The caller's root
        reference keeps every sub-object alive for the duration, so
        ids cannot be recycled mid-call.
        """
        if type(node) is InternedArray and node.store is self:
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("arrays.intern.hit")
            return node
        memoed = seen.get(id(node))
        if memoed is not None:
            return memoed
        if len(node) != self.n:
            raise ProtocolViolation(
                f"array level has length {len(node)}, expected n={self.n}"
            )

        children: List[Any] = []
        key_parts: List[Any] = []
        child_depths: List[int] = []
        for component in node:
            if isinstance(component, tuple):
                canonical = self._intern_node(component, seen)
                children.append(canonical)
                # Key the child by its identity token, not the node:
                # nodes compare by type-insensitive tuple equality, so
                # typed-distinct children ((3, 1) vs (3, True)) would
                # collide in the key dict and merge their parents.
                key_parts.append(canonical.key_token)
                child_depths.append(canonical.depth)
            else:
                children.append(component)
                key_parts.append((component.__class__, component))
                child_depths.append(0)
        if len(set(child_depths)) != 1:
            raise ProtocolViolation(
                f"ragged array: component depths {sorted(set(child_depths))}"
            )

        key = tuple(key_parts)
        try:
            existing = self._nodes.get(key)
        except TypeError:
            raise ProtocolViolation(
                "array has an unhashable leaf; cannot be canonicalised"
            ) from None
        if existing is not None:
            seen[id(node)] = existing
            observer = _obs.ACTIVE
            if observer is not None:
                observer.count("arrays.intern.hit")
            return existing

        canonical_node = self._build(key, tuple(children), child_depths[0])
        seen[id(node)] = canonical_node
        return canonical_node

    def _build(
        self,
        key: Tuple[Any, ...],
        children: Tuple[Any, ...],
        child_depth: int,
    ) -> InternedArray:
        """Create and register a new canonical node (children canonical)."""
        leaf_count = 0
        defined = True
        leaves: List[TypedLeaf] = []
        seen_leaves: Dict[TypedLeaf, None] = {}
        for component in children:
            if type(component) is InternedArray:
                leaf_count += component.leaf_count
                defined = defined and component.defined
                for typed_leaf in component.leaves_unique:
                    if typed_leaf not in seen_leaves:
                        seen_leaves[typed_leaf] = None
                        leaves.append(typed_leaf)
            else:
                leaf_count += 1
                defined = defined and not is_bottom(component)
                typed_leaf = (component.__class__, component)
                if typed_leaf not in seen_leaves:
                    seen_leaves[typed_leaf] = None
                    leaves.append(typed_leaf)

        node = tuple.__new__(InternedArray, children)
        node.depth = child_depth + 1
        node.leaf_count = leaf_count
        node.leaves_unique = tuple(leaves)
        node.defined = defined
        node.key_token = object()
        node.store = self
        node._hash = tuple.__hash__(node)
        self._nodes[key] = node
        self._order.append(node)
        observer = _obs.ACTIVE
        if observer is not None:
            observer.count("arrays.intern.miss")
        return node


#: The process-wide shared stores, one per system size ``n``.
_SHARED_STORES: Dict[int, ArrayStore] = {}

#: Most canonical nodes ever live across the registry at once —
#: survives :func:`clear_shared_stores`, so long-lived services can
#: see the peak even after the periodic resets that bound it.
_HIGH_WATER_NODES = 0


def shared_store(n: int) -> ArrayStore:
    """The process-wide canonical-node pool for system size ``n``.

    All processors of all executions at one ``n`` share it, which is
    exactly the point: a broadcast sub-array is interned once and
    every receiver's state references the same node.
    """
    store = _SHARED_STORES.get(n)
    if store is None:
        store = ArrayStore(n)
        _SHARED_STORES[n] = store
        # Deferred import: persist imports this module.  A fresh
        # shared store is warmed from the active persistent cache (a
        # no-op when caching is off), so repeated subtrees are shared
        # across *runs*, not just within one.
        from repro.arrays import persist as _persist

        _persist.warm_shared_store(store)
    return store


def clear_shared_stores() -> None:
    """Drop every shared store (tests; long-lived services).

    Existing interned nodes stay valid — they keep their metadata and
    their store reference alive — but new interning starts from empty
    pools, so previously-issued nodes will no longer be identical to
    newly interned equal structures.

    The registry otherwise grows without bound across unrelated
    workloads (every sweep cell's states stay reachable through it),
    so the bench harness and the fuzz campaign runner call this
    between workloads; the peak is recorded first (see
    :func:`shared_store_stats`).
    """
    global _HIGH_WATER_NODES
    nodes = sum(len(store) for store in _SHARED_STORES.values())
    if nodes > _HIGH_WATER_NODES:
        _HIGH_WATER_NODES = nodes
    _SHARED_STORES.clear()


def shared_store_stats() -> Dict[str, int]:
    """Size of the shared-store registry, for leak monitoring.

    ``nodes``/``stores`` count what is live right now;
    ``high_water_nodes`` is the most nodes ever observed at once
    (updated here and when :func:`clear_shared_stores` drops a
    registry, so the peak survives the reset).
    """
    global _HIGH_WATER_NODES
    nodes = sum(len(store) for store in _SHARED_STORES.values())
    if nodes > _HIGH_WATER_NODES:
        _HIGH_WATER_NODES = nodes
    return {
        "nodes": nodes,
        "stores": len(_SHARED_STORES),
        "high_water_nodes": _HIGH_WATER_NODES,
    }


def release_shared_stores() -> None:
    """End-of-workload registry release: observe, flush, clear.

    The one helper every workload boundary goes through — the sweep
    runner (serial and pooled), the bench harness between suites and
    the fuzz campaign between workload groups.  It records the
    ``arrays.shared_store.*`` gauges, flushes any persistent-cache
    deltas (:func:`repro.arrays.persist.flush_active`; a no-op when
    caching is off) while the stores are still alive, and then drops
    the registry so unrelated workloads start from empty pools.
    """
    observe_shared_stores()
    from repro.arrays import persist as _persist

    _persist.flush_active()
    clear_shared_stores()


def observe_shared_stores() -> None:
    """Report registry size through the active observer's gauges."""
    observer = _obs.ACTIVE
    if observer is None:
        return
    stats = shared_store_stats()
    observer.gauge("arrays.shared_store.nodes", stats["nodes"])
    observer.gauge("arrays.shared_store.stores", stats["stores"])
    observer.gauge(
        "arrays.shared_store.high_water_nodes", stats["high_water_nodes"]
    )
