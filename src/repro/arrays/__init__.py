"""Nested arrays and partial functions (Section 5.1 of the paper).

The compact full-information protocol manipulates *i-dimensional
arrays*: a 0-dimensional array of a set ``S`` is any element of ``S``;
an i-dimensional array is an ``n``-vector of (i-1)-dimensional arrays.
Two array families matter:

* **value arrays** — arrays over the input set ``V``; the states and
  messages of the full-information protocol,
* **index arrays** — arrays over processor ids ``{1..n}``; the
  compressed states (``CORE``) of the compact protocol in blocks
  after the first.

Arrays are represented as plain nested tuples so that they are
hashable (avalanche agreement tallies votes over them), cheaply
comparable, and directly printable.  The paper's "undefined" element
is :data:`repro.types.BOTTOM`; by the paper's convention an array is
undefined whenever any element of it is undefined, and a partial
function applied to an undefined argument is undefined.

Because the protocols broadcast, these trees are overwhelmingly
*shared* substructure; :mod:`repro.arrays.store` hash-conses them into
canonical :class:`~repro.arrays.store.InternedArray` nodes (still
tuples, so nothing above notices) with precomputed shape metadata, and
every walk in this package takes an O(unique nodes) — usually O(1) —
fast path over them.
"""

from repro.arrays.store import (
    ArrayStore,
    InternedArray,
    clear_shared_stores,
    release_shared_stores,
    shared_store,
)
from repro.arrays.value_array import (
    array_depth,
    array_leaves,
    count_leaves,
    is_defined_array,
    is_index_scalar,
    iter_paths,
    leaf_at,
    make_array,
    map_leaves,
    replace_at,
    uniform_array,
    unique_leaves,
    validate_array,
)
from repro.arrays.partial import (
    PartialFunction,
    compose,
    identity,
    is_extension,
    substitutive_apply,
    table_function,
)
from repro.arrays.encoding import (
    MessageSizer,
    bits_for_alphabet,
    encoded_array_bits,
    encoded_message_bits,
)

__all__ = [
    "ArrayStore",
    "InternedArray",
    "clear_shared_stores",
    "release_shared_stores",
    "shared_store",
    "unique_leaves",
    "array_depth",
    "array_leaves",
    "count_leaves",
    "is_defined_array",
    "is_index_scalar",
    "iter_paths",
    "leaf_at",
    "make_array",
    "map_leaves",
    "replace_at",
    "uniform_array",
    "validate_array",
    "PartialFunction",
    "compose",
    "identity",
    "is_extension",
    "substitutive_apply",
    "table_function",
    "MessageSizer",
    "bits_for_alphabet",
    "encoded_array_bits",
    "encoded_message_bits",
]
