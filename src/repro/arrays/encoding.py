"""Exact bit accounting for protocol messages (Section 5.6 costs).

The paper measures communication in *message bits*, with every bound
carrying a ``log |V|`` factor for value leaves; index leaves cost
``log n``.  We never serialise hot-path traffic — messages travel as
Python objects — but every message is *measured* as if encoded:

* a scalar value leaf costs ``ceil(log2 |V|)`` bits (minimum 1),
* a scalar index leaf costs ``ceil(log2 n)`` bits (minimum 1),
* an array costs the sum of its leaves plus a small self-delimiting
  header (:data:`HEADER_BITS` per array node) covering shape framing,
* :data:`repro.types.BOTTOM` and the null message of the avalanche
  coding convention (Section 4) cost :data:`NULL_BITS` = 0 bits,
  matching the paper's "at a cost of 0 bits",
* a tuple-of-subprotocol-components message (Section 5.2) costs the
  sum of its components.

These constants make measured totals reproducible and comparable with
the paper's asymptotic claims; EXPERIMENTS.md reports both.
"""

from __future__ import annotations

import math
from typing import Any, Callable, Dict, Optional, Tuple

from repro.arrays import flat as _flat
from repro.arrays.store import InternedArray
from repro.errors import EncodingError
from repro.types import is_bottom

# Framing overhead charged once per composite (tuple) node.  Covers a
# length/shape marker; a constant so that totals stay within the
# paper's O(.) bounds (each node adds O(1) bits per child pointer-free
# preorder encoding).
HEADER_BITS = 2

# Cost of the null message under the avalanche coding convention and of
# an absent (bottom) component.
NULL_BITS = 0


def bits_for_alphabet(size: int) -> int:
    """Bits needed to name one element of an alphabet of ``size``.

    ``ceil(log2 size)``, with a floor of 1 bit so that even a unary
    alphabet is charged something when actually transmitted.
    """
    if size < 1:
        raise EncodingError(f"alphabet size must be positive, got {size}")
    if size == 1:
        return 1
    return math.ceil(math.log2(size))


def _interned_node_count(array: InternedArray) -> int:
    """Tuple nodes in the tree an interned array stands for.

    A well-shaped depth-``d`` array over ``n`` ids has
    ``1 + n + ... + n**(d-1) = (n**d - 1) / (n - 1)`` tuple nodes
    (``d`` nodes when ``n == 1``); ``leaf_count`` is ``n ** d``, so
    the count is O(1) arithmetic on precomputed metadata.
    """
    n = len(array)
    if n == 1:
        return array.depth
    return (array.leaf_count - 1) // (n - 1)


def encoded_array_bits(array: Any, leaf_bits: int) -> int:
    """Measured size of a nested-tuple array with uniform leaf cost.

    For an interned array with no :data:`~repro.types.BOTTOM` leaves
    the size is closed-form (every leaf costs ``leaf_bits``, every
    tuple node :data:`HEADER_BITS`), so measurement is O(1) instead of
    O(``n ** depth``) — bottoms cost 0 bits, so undefined arrays fall
    back to the walk.
    """
    if is_bottom(array):
        return NULL_BITS
    if isinstance(array, InternedArray):
        if array.defined:
            return (
                array.leaf_count * leaf_bits
                + _interned_node_count(array) * HEADER_BITS
            )
        if _flat.flat_enabled():
            # Undefined arrays need per-leaf costs (bottoms are free);
            # the flat column batches that instead of walking the tree.
            return _flat.tables_for(array.store).measured_bits(
                array,
                ("uniform", leaf_bits),
                lambda leaf: NULL_BITS if is_bottom(leaf) else leaf_bits,
                HEADER_BITS,
            )
    if isinstance(array, tuple):
        return HEADER_BITS + sum(
            encoded_array_bits(component, leaf_bits) for component in array
        )
    return leaf_bits


def encoded_message_bits(message: Any, leaf_bits: Callable[[Any], int]) -> int:
    """Measured size with a per-leaf cost function.

    ``leaf_bits`` receives each scalar leaf and returns its bit cost;
    use this when a message mixes value leaves and index leaves.
    """
    if is_bottom(message):
        return NULL_BITS
    if isinstance(message, tuple):
        return HEADER_BITS + sum(
            encoded_message_bits(component, leaf_bits) for component in message
        )
    return leaf_bits(message)


def structural_key(message: Any) -> Any:
    """A hashable cache key capturing a message's *typed* structure.

    Equal keys imply equal typed structure, so a sizer may memoize on
    them.  The key must discriminate leaf types because measurement
    does: ``True == 1`` yet a bool is charged as a value while a small
    int may be charged as an index.  Raises ``TypeError`` for
    unhashable leaves (callers then skip the cache).

    An interned array returns its ``key_token`` in O(1): the store
    already discriminates leaf types, so canonical-node *identity* is
    typed structure.  (A plain tuple and its interned twin get
    different keys — both correct, one cold cache entry.)
    """
    if isinstance(message, InternedArray):
        return message.key_token
    if isinstance(message, tuple):
        return tuple(structural_key(component) for component in message)
    hash(message)  # unhashable -> TypeError, caller falls back
    return (type(message), message)


class MessageSizer:
    """Per-protocol message measurement policy.

    A protocol constructs one of these with its value-alphabet size and
    the system size ``n``; the runtime's metrics layer calls
    :meth:`measure` on every message a correct processor sends.

    Parameters
    ----------
    value_alphabet_size:
        ``|V|`` — the number of legal input values.
    n:
        Number of processors (sizes index leaves).

    Repeated measurements of structurally equal messages are served
    from a memo cache: protocols broadcast, so one round presents the
    same message up to ``n`` times, and block repetition re-presents it
    across rounds.  The cache key is :func:`structural_key`, which
    distinguishes leaf types, so a hit is always size-exact.
    """

    def __init__(self, value_alphabet_size: int, n: int):
        self.value_bits = bits_for_alphabet(value_alphabet_size)
        self.index_bits = bits_for_alphabet(n)
        self._n = n
        self._cache: Dict[Any, int] = {}

    def _leaf_bits(self, leaf: Any) -> int:
        # Index leaves are ints in 1..n; everything else is charged as
        # a value.  Booleans are values (True/False inputs), not ids.
        if (
            isinstance(leaf, int)
            and not isinstance(leaf, bool)
            and 1 <= leaf <= self._n
        ):
            return self.index_bits
        return self.value_bits

    def measure(self, message: Any) -> int:
        """Exact measured size of ``message`` in bits (memoized).

        Interned arrays recurse through this cache per *component*:
        children are canonical nodes with O(1) keys, so a new round's
        state — one new node over last round's children — costs one
        cache insert instead of a full O(``n ** depth``) walk.
        """
        if isinstance(message, InternedArray) and _flat.flat_enabled():
            # Same policy (value/index split, bottoms free), served
            # from the store's flat size column: one batched scan per
            # sync instead of a memoized recursion per new node.
            return _flat.tables_for(message.store).measured_bits(
                message,
                ("sizer", self.value_bits, self.index_bits, self._n),
                self._measure_leaf,
                HEADER_BITS,
            )
        try:
            key: Optional[Tuple[Any, ...]] = (structural_key(message),)
        except TypeError:
            key = None  # unhashable somewhere inside: measure directly
        if key is not None:
            cached = self._cache.get(key)
            if cached is not None:
                return cached
        if isinstance(message, InternedArray):
            bits = HEADER_BITS + sum(
                self.measure(component) for component in message
            )
        else:
            bits = encoded_message_bits(message, self._leaf_bits)
        if key is not None:
            self._cache[key] = bits
        return bits

    def _measure_leaf(self, leaf: Any) -> int:
        """One leaf's cost under :meth:`measure` (bottoms are free)."""
        if is_bottom(leaf):
            return NULL_BITS
        return self._leaf_bits(leaf)

    def measure_value_array(self, array: Any) -> int:
        """Size of an array charging every leaf as a value."""
        return encoded_array_bits(array, self.value_bits)

    def measure_index_array(self, array: Any) -> int:
        """Size of an array charging every leaf as an index."""
        return encoded_array_bits(array, self.index_bits)
