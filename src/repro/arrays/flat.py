"""Flat integer-table kernel over the interned DAG (``REPRO_KERNEL``).

The hash-consing store (:mod:`repro.arrays.store`) collapses the
exponential full-information state into a DAG of canonical nodes,
making every per-round pass O(unique nodes).  What remains is pure
Python *node churn*: each pass still visits nodes one at a time
through dictionaries and recursion.  This module removes that layer
for the hot passes by mirroring a store into **flat integer tables**
and batch-scanning them with numpy:

* every canonical node becomes a dense **row id**, assigned in intern
  order — so children always occupy smaller ids than their parents,
  and a single ascending scan is a valid bottom-up traversal;
* leaf values are bit-packed into small-integer **codes** from a
  per-store typed-leaf alphabet (keyed ``(type, value)``, mirroring
  the store's typed identity, so ``True`` and ``1`` get distinct
  codes);
* ``children[row]`` holds one *ref* per component — a row id for a
  sub-array, or ``-(code + 1)`` for a leaf — beside parallel
  ``depth`` / ``leaf_count`` / ``defined`` columns.

On top of the tables sit three vectorized scans, each an exact
re-implementation of a hot per-round pass:

* :meth:`FlatTables.measured_bits` — per-node encoded sizes under a
  cost policy, computed level-by-level (an interned node's children
  all share one depth, so one gather-and-sum per depth layer covers
  every new row);
* :meth:`FlatTables.leaves_ok` — "every leaf satisfies a predicate"
  verdicts for whole row ranges at once (block-1 expansion and
  legality checks);
* :func:`eig_sweep` — the suffix-grouped strict-majority resolution
  of the EIG Byzantine decision rule as a descent + ``bincount``
  pipeline over a cached distinct-label chain topology.

The kernel is selected with the ``REPRO_KERNEL`` environment variable
(``flat`` — the default — or ``python``) or programmatically with
:func:`use_kernel`; the pure-Python paths remain in place as the
semantic reference, and every flat path is byte-identical to them
(pinned by ``tests/arrays/test_flat.py`` and the fuzz-corpus replay).
``docs/perf.md`` has the encoding layout and measurements.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Tuple,
)

import numpy as np
from numpy.typing import NDArray

import repro.obs.core as _obs
from repro.arrays.store import ArrayStore, InternedArray, TypedLeaf
from repro.errors import ConfigurationError

#: Environment variable selecting the kernel for the process.
KERNEL_ENV = "REPRO_KERNEL"

#: The two kernels.  ``flat`` is the default; ``python`` keeps every
#: pass on the reference pure-Python implementation.
FLAT_KERNEL = "flat"
PYTHON_KERNEL = "python"
_KERNELS = (FLAT_KERNEL, PYTHON_KERNEL)

#: Process-wide programmatic override (``None`` defers to the
#: environment).  Like the shared-store registry this is hash-consing
#: machinery, not protocol state: both kernels compute byte-identical
#: results, so the selection can never alter a protocol-visible
#: outcome.
_FORCED: Optional[str] = None

#: ``(n, depth)`` -> the distinct-label chain topology (a pure
#: function of its arguments; see :func:`chain_topology`).
_TOPOLOGIES: Dict[Tuple[int, int], "ChainTopology"] = {}

PURITY_EXEMPT = {
    "kernel_name": (
        "reads the REPRO_KERNEL environment switch and the module-level "
        "override; kernel selection only chooses between two "
        "byte-identical implementations, so the read is observationally "
        "pure"
    ),
    "set_kernel": (
        "writes the module-level kernel override (the programmatic "
        "counterpart of the REPRO_KERNEL environment variable); both "
        "kernels are byte-identical, so the shared state cannot alter "
        "an outcome"
    ),
    "use_kernel": (
        "scoped wrapper around set_kernel; reads the override to "
        "restore it on exit"
    ),
    "tables_for": (
        "memoises one FlatTables mirror per ArrayStore on the store "
        "itself; the tables are derived read-only views of interned "
        "nodes, so the cached state is observationally pure"
    ),
    "chain_topology": (
        "memoises the (n, depth) chain-enumeration tables in a "
        "module-level registry; the topology is a pure function of its "
        "arguments"
    ),
}


#: Last ``(raw env string, parsed kernel)`` pair; every hot pass asks
#: :func:`flat_enabled`, so the parse is memoised on the raw string and
#: re-done only when the variable actually changes.
_ENV_CACHE: Tuple[Optional[str], str] = (None, FLAT_KERNEL)


def kernel_name() -> str:
    """The active kernel: the override, else ``REPRO_KERNEL``, else flat.

    Raises
    ------
    ConfigurationError
        If ``REPRO_KERNEL`` names neither kernel — a typo'd switch
        silently running the wrong kernel would defeat the point of
        keeping a reference path.
    """
    if _FORCED is not None:
        return _FORCED
    global _ENV_CACHE
    raw = os.environ.get(KERNEL_ENV)
    cached_raw, cached_name = _ENV_CACHE
    if raw == cached_raw:
        return cached_name
    value = (raw or "").strip().lower()
    if not value:
        value = FLAT_KERNEL
    elif value not in _KERNELS:
        raise ConfigurationError(
            f"{KERNEL_ENV}={value!r} is not a kernel; choose one of "
            f"{'|'.join(_KERNELS)}"
        )
    _ENV_CACHE = (raw, value)
    return value


def flat_enabled() -> bool:
    """Whether the flat kernel is active for this process."""
    return kernel_name() == FLAT_KERNEL


def set_kernel(name: Optional[str]) -> None:
    """Force the kernel programmatically (``None`` defers to the env)."""
    global _FORCED
    if name is not None and name not in _KERNELS:
        raise ConfigurationError(
            f"unknown kernel {name!r}; choose one of {'|'.join(_KERNELS)}"
        )
    _FORCED = name


@contextmanager
def use_kernel(name: str) -> Iterator[None]:
    """Scope a kernel override to a ``with`` block (tests, benches)."""
    previous = _FORCED
    set_kernel(name)
    try:
        yield
    finally:
        set_kernel(previous)


# -- the tables --------------------------------------------------------------

_INITIAL_CAPACITY = 64

RefTable = NDArray[np.int32]
IntColumn = NDArray[np.int64]
BoolColumn = NDArray[np.bool_]


def _grown(column: NDArray[Any], rows: int) -> NDArray[Any]:
    """``column`` with capacity for at least ``rows`` rows (amortized)."""
    capacity = int(column.shape[0])
    if rows <= capacity:
        return column
    while capacity < rows:
        capacity *= 2
    shape = (capacity,) + column.shape[1:]
    grown = np.zeros(shape, dtype=column.dtype)
    grown[: column.shape[0]] = column
    return grown


class _MeasureColumn:
    """One incremental per-row bit-size column (one cost policy)."""

    __slots__ = ("header_bits", "leaf_cost", "bits", "rows_done")

    def __init__(self, header_bits: int):
        self.header_bits = header_bits
        # Per-leaf-code cost, extended as the alphabet grows; each
        # distinct typed leaf is costed exactly once, ever.
        self.leaf_cost: List[int] = []
        self.bits: IntColumn = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.rows_done = 0


class _OkColumn:
    """One incremental per-row all-leaves-satisfy verdict column."""

    __slots__ = ("leaf_ok", "ok", "rows_done")

    def __init__(self) -> None:
        self.leaf_ok: List[bool] = []
        self.ok: BoolColumn = np.zeros(_INITIAL_CAPACITY, dtype=np.bool_)
        self.rows_done = 0


class FlatTables:
    """Append-only numpy mirror of one :class:`ArrayStore`'s DAG.

    Stores only ever grow and canonical nodes are immutable, so rows
    are immutable once written and children always occupy smaller row
    ids than their parents.  Every derived column (sizes, verdicts)
    exploits that: extending it to new rows is one batched gather per
    depth layer, never a revisit of old rows.  Obtain a store's
    mirror with :func:`tables_for`; it stays attached to the store
    and shares its lifetime.
    """

    def __init__(self, store: ArrayStore):
        self.store = store
        self.n = store.n
        # Node ``key_token`` -> row id, and row id -> node.
        self._row_index: Dict[object, int] = {}
        self._nodes: List[InternedArray] = []
        # Typed leaf -> small-integer code, and its inverse.
        self._code_of: Dict[TypedLeaf, int] = {}
        self._leaves: List[Any] = []
        self.children: RefTable = np.zeros(
            (_INITIAL_CAPACITY, store.n), dtype=np.int32
        )
        self.depth: IntColumn = np.zeros(_INITIAL_CAPACITY, dtype=np.int64)
        self.leaf_count: IntColumn = np.zeros(
            _INITIAL_CAPACITY, dtype=np.int64
        )
        self.defined: BoolColumn = np.zeros(_INITIAL_CAPACITY, dtype=np.bool_)
        self._measure_columns: Dict[Any, _MeasureColumn] = {}
        self._ok_columns: Dict[Any, _OkColumn] = {}

    # -- mirroring ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self._nodes)

    @property
    def leaf_alphabet_size(self) -> int:
        """Distinct typed leaves coded so far."""
        return len(self._leaves)

    def leaf_at(self, code: int) -> Any:
        """The leaf object a code stands for."""
        return self._leaves[code]

    def code_of(self, typed_leaf: TypedLeaf) -> Optional[int]:
        """The code of one typed leaf, or ``None`` if never mirrored."""
        return self._code_of.get(typed_leaf)

    def sync(self) -> int:
        """Mirror nodes interned since the last call; returns row count.

        O(new nodes).  Safe at any time: the store's intern order is
        child-before-parent, so every ref a new row needs is already
        assigned when the row is written.
        """
        nodes = self.store.interned_nodes()
        start = len(self._nodes)
        total = len(nodes)
        if total == start:
            return start
        self.children = _grown(self.children, total)
        self.depth = _grown(self.depth, total)
        self.leaf_count = _grown(self.leaf_count, total)
        self.defined = _grown(self.defined, total)
        row_index = self._row_index
        code_of = self._code_of
        leaves = self._leaves
        children = self.children
        for row in range(start, total):
            node = nodes[row]
            for slot, component in enumerate(node):
                if type(component) is InternedArray:
                    children[row, slot] = row_index[component.key_token]
                else:
                    typed = (component.__class__, component)
                    code = code_of.get(typed)
                    if code is None:
                        code = len(leaves)
                        code_of[typed] = code
                        leaves.append(component)
                    children[row, slot] = -(code + 1)
            self.depth[row] = node.depth
            self.leaf_count[row] = node.leaf_count
            self.defined[row] = node.defined
            row_index[node.key_token] = row
            self._nodes.append(node)
        observer = _obs.ACTIVE
        if observer is not None:
            observer.count("arrays.flat.rows", total - start)
        return total

    def row_of(self, node: InternedArray) -> int:
        """The row id of a node of this store (syncs if necessary)."""
        row = self._row_index.get(node.key_token)
        if row is None:
            self.sync()
            row = self._row_index[node.key_token]
        return row

    def node_at(self, row: int) -> InternedArray:
        """The canonical node a row mirrors."""
        return self._nodes[row]

    def _new_row_batches(
        self, start: int, total: int
    ) -> Iterator[Tuple[int, IntColumn]]:
        """Rows ``start:total`` grouped by depth, ascending.

        Children precede parents in row order, so ascending-depth
        batches are a valid bottom-up schedule for any column whose
        row value depends only on child rows — and the batch gathers
        see only complete inputs, because an interned node's children
        all share depth ``level - 1``.
        """
        fresh = np.arange(start, total, dtype=np.int64)
        depths = self.depth[fresh]
        for level in np.unique(depths):
            yield int(level), fresh[depths == level]

    # -- derived columns ---------------------------------------------------

    def measured_bits(
        self,
        node: InternedArray,
        key: Any,
        leaf_cost: Callable[[Any], int],
        header_bits: int,
    ) -> int:
        """Exact encoded size of ``node`` under one cost policy.

        ``key`` identifies the policy (callers derive it from their
        cost parameters — same key, same policy); ``leaf_cost`` maps
        one leaf object to its bit cost and is consulted once per
        distinct typed leaf, ever.  Equivalent to the recursive walk
        charging ``header_bits`` per tuple level plus
        ``leaf_cost(leaf)`` per leaf occurrence — computed for every
        store row at once, one vectorized gather-and-sum per depth
        layer, so steady-state per-message calls are O(1) lookups.
        """
        total = self.sync()
        column = self._measure_columns.get(key)
        if column is None:
            column = self._measure_columns[key] = _MeasureColumn(header_bits)
        if column.rows_done < total:
            cost_list = column.leaf_cost
            for code in range(len(cost_list), len(self._leaves)):
                cost_list.append(int(leaf_cost(self._leaves[code])))
            column.bits = _grown(column.bits, total)
            costs = np.asarray(cost_list, dtype=np.int64)
            children = self.children
            bits = column.bits
            header = column.header_bits
            for level, rows in self._new_row_batches(column.rows_done, total):
                refs = children[rows]
                if level == 1:
                    bits[rows] = header + costs[-(refs + 1)].sum(axis=1)
                else:
                    bits[rows] = header + bits[refs].sum(axis=1)
            column.rows_done = total
        return int(column.bits[self.row_of(node)])

    def leaves_ok(
        self,
        node: InternedArray,
        key: Any,
        leaf_ok: Callable[[Any], bool],
    ) -> bool:
        """Whether every leaf of ``node`` satisfies ``leaf_ok``.

        ``key`` identifies the (immutable) predicate; ``leaf_ok`` runs
        once per distinct typed leaf, ever.  Exact: a leaf predicate's
        verdict depends only on the leaf, so scanning distinct codes
        is equivalent to scanning all ``n ** depth`` occurrences.
        """
        total = self.sync()
        column = self._ok_columns.get(key)
        if column is None:
            column = self._ok_columns[key] = _OkColumn()
        if column.rows_done < total:
            ok_list = column.leaf_ok
            for code in range(len(ok_list), len(self._leaves)):
                ok_list.append(bool(leaf_ok(self._leaves[code])))
            column.ok = _grown(column.ok, total)
            code_ok = np.asarray(ok_list, dtype=np.bool_)
            children = self.children
            ok = column.ok
            for level, rows in self._new_row_batches(column.rows_done, total):
                refs = children[rows]
                if level == 1:
                    ok[rows] = code_ok[-(refs + 1)].all(axis=1)
                else:
                    ok[rows] = ok[refs].all(axis=1)
            column.rows_done = total
        return bool(column.ok[self.row_of(node)])


def tables_for(store: ArrayStore) -> FlatTables:
    """The flat mirror of ``store``, built on first use.

    The mirror hangs off the store itself, so it shares the store's
    lifetime exactly: :func:`repro.arrays.store.clear_shared_stores`
    drops both together, and worker processes forked mid-run inherit
    a consistent pair.
    """
    tables: Optional[FlatTables] = store.flat_tables
    if tables is None:
        tables = FlatTables(store)
        store.flat_tables = tables
    return tables


# -- the EIG chain sweep -----------------------------------------------------


class ChainTopology:
    """Index tables over distinct-label relay chains for one ``(n, depth)``.

    Level ``l`` (1-based) enumerates the length-``l`` chains of
    distinct labels from ``1..n`` in prefix-major label order.  For
    level ``l``'s chain ``i``, three parallel int64 arrays say how it
    relates to level ``l - 1``:

    * ``prefix[l - 1][i]`` — the index of ``chain[:-1]``,
    * ``last[l - 1][i]`` — the final label (1-based),
    * ``suffix[l - 1][i]`` — the index of ``chain[1:]``.

    ``prefix``/``last`` drive the downward array descent (extending a
    path appends the label indexing the next component); ``suffix``
    drives the upward majority sweep (extending a *chain* prepends
    the later relayer in array-path order).
    """

    __slots__ = ("n", "depth", "prefix", "last", "suffix", "level_sizes")

    def __init__(self, n: int, depth: int):
        self.n = n
        self.depth = depth
        self.prefix: List[IntColumn] = []
        self.last: List[IntColumn] = []
        self.suffix: List[IntColumn] = []
        #: Chains per level, level 0 included (the empty chain).
        self.level_sizes: List[int] = [1]
        previous: Dict[Tuple[int, ...], int] = {(): 0}
        for _ in range(depth):
            index_of: Dict[Tuple[int, ...], int] = {}
            prefix: List[int] = []
            last: List[int] = []
            suffix: List[int] = []
            for prior_chain, prior_index in previous.items():
                for label in range(1, n + 1):
                    if label in prior_chain:
                        continue
                    chain = prior_chain + (label,)
                    index_of[chain] = len(prefix)
                    prefix.append(prior_index)
                    last.append(label)
                    suffix.append(previous[chain[1:]])
            self.prefix.append(np.asarray(prefix, dtype=np.int64))
            self.last.append(np.asarray(last, dtype=np.int64))
            self.suffix.append(np.asarray(suffix, dtype=np.int64))
            self.level_sizes.append(len(prefix))
            previous = index_of


def chain_topology(n: int, depth: int) -> ChainTopology:
    """The memoised chain topology for ``(n, depth)``.

    Requires ``depth <= n`` — longer distinct-label chains do not
    exist, and the reference sweep has no resolution for them.
    """
    if depth > n:
        raise ConfigurationError(
            f"no depth-{depth} distinct-label chains over {n} labels"
        )
    key = (n, depth)
    topology = _TOPOLOGIES.get(key)
    if topology is None:
        topology = ChainTopology(n, depth)
        _TOPOLOGIES[key] = topology
    return topology


def eig_sweep(
    state: InternedArray,
    vote_of_code: IntColumn,
    num_candidates: int,
    default_index: int,
) -> int:
    """The EIG strict-majority resolution of ``state``, vectorized.

    ``vote_of_code`` maps every leaf code of the state's store to a
    candidate index; candidate indices MUST be assigned in ascending
    deterministic-rank order, because count ties break toward the
    lowest index (``argmax`` returns the first maximum) — exactly the
    reference sweep's rank tie-break.  Returns the winning candidate
    index for the empty chain.

    One descent reads every distinct-label chain's recorded leaf
    (paths sharing an array prefix share the gather), then each
    upward pass tallies length-``l`` resolutions under their
    length-``l - 1`` suffix with one ``bincount`` and applies the
    strict-majority rule ``2 * best > n - (l - 1)`` in bulk.  Every
    length-``l - 1`` chain has exactly ``n - (l - 1)`` one-relayer
    extensions (``depth <= n``), so no tally group is empty.
    """
    tables = tables_for(state.store)
    depth = state.depth
    n = tables.n
    topology = chain_topology(n, depth)
    tables.sync()
    children = tables.children
    refs: IntColumn = np.asarray([tables.row_of(state)], dtype=np.int64)
    for level in range(depth):
        gathered: IntColumn = children[
            refs[topology.prefix[level]], topology.last[level] - 1
        ].astype(np.int64)
        refs = gathered
    votes: IntColumn = vote_of_code[-(refs + 1)]
    spread = num_candidates
    for level in range(depth, 0, -1):
        groups = topology.level_sizes[level - 1]
        counts = np.bincount(
            topology.suffix[level - 1] * spread + votes,
            minlength=groups * spread,
        ).reshape(groups, spread)
        best = counts.argmax(axis=1)
        best_count = counts[np.arange(groups), best]
        extensions = n - (level - 1)
        resolved: IntColumn = np.where(
            best_count * 2 > extensions, best, default_index
        ).astype(np.int64)
        votes = resolved
    return int(votes[0])
