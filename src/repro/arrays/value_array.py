"""i-dimensional arrays as nested tuples (Section 5.1).

An array of dimension 0 is a scalar (any non-tuple value); an array of
dimension ``i > 0`` is a tuple of exactly ``n`` arrays of dimension
``i - 1``.  Scalars are required to be non-tuples so that the depth of
an array is determined by its structure alone.

Paths
-----
A *path* into a depth-``d`` array is a tuple of up to ``d`` processor
ids (1-based, matching the paper).  The empty path addresses the array
itself; path ``(q,)`` addresses the ``q``-th component, and so on.
Paths double as the node labels of the exponential-information-
gathering (EIG) tree view in :mod:`repro.fullinfo.eig`.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.arrays.store import InternedArray
from repro.errors import ProtocolViolation
from repro.types import is_bottom

Path = Tuple[int, ...]

# Fast-path note: an InternedArray whose top level has length ``n``
# was, by the store invariant (every level of a store-``n`` node has
# length exactly ``n``), shape-validated at intern time for this very
# ``n`` — so shape walks collapse to O(1) metadata reads.  All fast
# paths below are exact: they return precisely what the plain
# recursive walk would.


def make_array(components: Sequence[Any]) -> Tuple[Any, ...]:
    """Build a 1-level-deeper array from ``n`` component arrays."""
    return tuple(components)


def uniform_array(scalar: Any, depth: int, n: int) -> Any:
    """Return the depth-``depth`` array all of whose leaves are ``scalar``.

    Used to build well-shaped default messages when a faulty
    processor's message must be replaced (Theorem 9, Case 3).
    """
    if depth < 0:
        raise ValueError(f"depth must be non-negative, got {depth}")
    result: Any = scalar
    for _ in range(depth):
        result = tuple(result for _ in range(n))
    return result


def array_depth(array: Any, n: int) -> int:
    """Return the dimension of ``array``, validating uniform shape.

    Raises
    ------
    ProtocolViolation
        If the array is ragged, has a level whose length is not ``n``,
        or mixes scalars and sub-arrays at one level.  Messages
        arriving off the network are validated with this before use,
        so a faulty sender cannot crash a correct processor.
    """
    if not isinstance(array, tuple):
        return 0
    if isinstance(array, InternedArray) and len(array) == n:
        return array.depth
    if len(array) != n:
        raise ProtocolViolation(
            f"array level has length {len(array)}, expected n={n}"
        )
    depths = {array_depth(component, n) for component in array}
    if len(depths) != 1:
        raise ProtocolViolation(f"ragged array: component depths {depths}")
    return 1 + depths.pop()


def validate_array(
    array: Any,
    n: int,
    depth: Optional[int] = None,
    leaf_ok: Optional[Callable[[Any], bool]] = None,
) -> bool:
    """Check shape (and optionally depth and leaf membership).

    Returns ``True`` when the array is well-formed; ``False`` otherwise
    (never raises, unlike :func:`array_depth`).  This is the defensive
    entry point for anything received from a possibly faulty sender.

    An interned array short-circuits the shape walk entirely, and the
    leaf predicate runs over the node's *distinct* typed leaves rather
    than all ``n ** depth`` occurrences — same verdict, since a
    predicate's answer depends only on the leaf itself.
    """
    if isinstance(array, InternedArray) and len(array) == n:
        if depth is not None and array.depth != depth:
            return False
        if leaf_ok is not None:
            return all(leaf_ok(leaf) for _, leaf in array.leaves_unique)
        return True
    try:
        actual = array_depth(array, n)
    except ProtocolViolation:
        return False
    if depth is not None and actual != depth:
        return False
    if leaf_ok is not None:
        return all(leaf_ok(leaf) for leaf in array_leaves(array))
    return True


def array_leaves(array: Any) -> Iterator[Any]:
    """Yield the scalar leaves of ``array`` in left-to-right order."""
    if isinstance(array, tuple):
        for component in array:
            yield from array_leaves(component)
    else:
        yield array


def count_leaves(array: Any) -> int:
    """Number of scalar leaves (``n ** depth`` for a well-shaped array)."""
    if not isinstance(array, tuple):
        return 1
    if isinstance(array, InternedArray):
        return array.leaf_count
    return sum(count_leaves(component) for component in array)


def is_defined_array(array: Any) -> bool:
    """Paper convention: an array is undefined if any element is.

    A bare :data:`BOTTOM` is also undefined.
    """
    if isinstance(array, InternedArray):
        return array.defined
    return not any(is_bottom(leaf) for leaf in array_leaves(array))


def unique_leaves(array: Any) -> Tuple[Tuple[type, Any], ...]:
    """The distinct typed leaves of ``array`` in first-occurrence order.

    ``(type(leaf), leaf)`` pairs, deduplicated by typed equality —
    ``True`` and ``1`` stay distinct even though they compare equal.
    O(1) for interned arrays; one walk otherwise.  Raises ``TypeError``
    when a leaf is unhashable (callers then fall back to
    :func:`array_leaves`).
    """
    if isinstance(array, InternedArray):
        return array.leaves_unique
    ordered: List[Tuple[type, Any]] = []
    seen: Dict[Tuple[type, Any], None] = {}
    for leaf in array_leaves(array):
        typed = (leaf.__class__, leaf)
        if typed not in seen:
            seen[typed] = None
            ordered.append(typed)
    return tuple(ordered)


def map_leaves(function: Callable[[Any], Any], array: Any) -> Any:
    """Apply a scalar function to every leaf (a *substitutive* apply).

    This realises the substitutivity property of Section 5.1:
    ``f((a_1, ..., a_n)) = (f(a_1), ..., f(a_n))``.  The paper's
    partiality convention is **not** applied here; use
    :func:`repro.arrays.partial.substitutive_apply` when an undefined
    leaf must make the whole result undefined.
    """
    if isinstance(array, tuple):
        return tuple(map_leaves(function, component) for component in array)
    return function(array)


def leaf_at(array: Any, path: Path) -> Any:
    """Return the sub-array addressed by ``path`` (1-based components)."""
    node = array
    for process_id in path:
        if not isinstance(node, tuple):
            raise ProtocolViolation(
                f"path {path} descends below the leaves of the array"
            )
        if not 1 <= process_id <= len(node):
            raise ProtocolViolation(
                f"path component {process_id} outside 1..{len(node)}"
            )
        node = node[process_id - 1]
    return node


def replace_at(array: Any, path: Path, value: Any) -> Any:
    """Return a copy of ``array`` with the sub-array at ``path`` replaced."""
    if not path:
        return value
    if not isinstance(array, tuple):
        raise ProtocolViolation(
            f"path {path} descends below the leaves of the array"
        )
    head = path[0]
    if not 1 <= head <= len(array):
        raise ProtocolViolation(
            f"path component {head} outside 1..{len(array)}"
        )
    return tuple(
        replace_at(component, path[1:], value) if index == head - 1 else component
        for index, component in enumerate(array)
    )


def iter_paths(n: int, depth: int) -> Iterator[Path]:
    """Yield every leaf path of a depth-``depth`` array over ``n`` ids.

    The number of paths is ``n ** depth``; callers at test scale only.
    """
    if depth == 0:
        yield ()
        return
    for prefix in iter_paths(n, depth - 1):
        for process_id in range(1, n + 1):
            yield prefix + (process_id,)


def is_index_scalar(value: Any, n: int) -> bool:
    """Whether ``value`` is a processor id usable in an index array."""
    return isinstance(value, int) and not isinstance(value, bool) and 1 <= value <= n
