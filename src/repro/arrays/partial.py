"""Partial functions and the extension relation (Section 5.1).

The paper's conventions, realised here:

* a partial function is *undefined* on some arguments — we model
  "undefined" with :data:`repro.types.BOTTOM`;
* any partial function applied to an undefined argument is undefined;
* any array any of whose elements is undefined is undefined;
* ``f`` *extends* ``g`` when for every ``x`` either ``f(x) = g(x)`` or
  ``g(x)`` is undefined;
* a function on arrays is *substitutive* when it distributes over the
  array structure: ``f((a_1, ..., a_n)) = (f(a_1), ..., f(a_n))``.

Expansion functions (:mod:`repro.compact.expansion`) are the main
clients: they are substitutive partial functions from index arrays to
value arrays, and Lemma 7 is a statement about the extension relation
between expansion functions held by different correct processors at
different rounds.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, Optional

from repro.types import BOTTOM, is_bottom


class PartialFunction:
    """A scalar partial function with bottom-propagation built in.

    Wraps a plain callable that may return :data:`BOTTOM` for
    arguments outside its domain.  Calling the wrapper with
    :data:`BOTTOM` returns :data:`BOTTOM` without invoking the
    underlying callable, enforcing the paper's convention.
    """

    def __init__(
        self, function: Callable[[Any], Any], name: Optional[str] = None
    ):
        self._function = function
        self.name = name or getattr(function, "__name__", "partial")

    def __call__(self, argument: Any) -> Any:
        if is_bottom(argument):
            return BOTTOM
        return self._function(argument)

    def __repr__(self) -> str:
        return f"PartialFunction({self.name})"

    def defined_at(self, argument: Any) -> bool:
        """Whether this function is defined on ``argument``."""
        return not is_bottom(self(argument))


def identity() -> PartialFunction:
    """The identity function (total, hence trivially partial)."""
    return PartialFunction(lambda value: value, name="identity")


def table_function(
    table: Dict[Any, Any], name: Optional[str] = None
) -> PartialFunction:
    """A partial function defined by a lookup table.

    Arguments missing from the table map to :data:`BOTTOM`.  The table
    is copied, so later mutation of the caller's dict does not change
    the function — important because expansion functions must be
    snapshots of a processor's state at a specific round.
    """
    snapshot = dict(table)
    return PartialFunction(
        lambda value: snapshot.get(value, BOTTOM), name=name or "table"
    )


def compose(outer: Callable[[Any], Any], inner: Callable[[Any], Any],
            name: Optional[str] = None) -> PartialFunction:
    """Compose two partial functions; bottom propagates through both."""

    def composed(value: Any) -> Any:
        intermediate = inner(value)
        if is_bottom(intermediate):
            return BOTTOM
        return outer(intermediate)

    return PartialFunction(composed, name=name or "compose")


def substitutive_apply(scalar_function: Callable[[Any], Any], array: Any) -> Any:
    """Apply a scalar partial function substitutively to an array.

    Distributes over the nested-tuple structure.  If the result of any
    leaf application is undefined then, per the paper's convention, the
    entire result is undefined (:data:`BOTTOM`), not an array with a
    bottom hole in it.
    """
    if is_bottom(array):
        return BOTTOM
    if isinstance(array, tuple):
        expanded = []
        for component in array:
            result = substitutive_apply(scalar_function, component)
            if is_bottom(result):
                return BOTTOM
            expanded.append(result)
        return tuple(expanded)
    return scalar_function(array)


def is_extension(
    candidate: Callable[[Any], Any],
    base: Callable[[Any], Any],
    domain: Iterable[Any],
) -> bool:
    """Check the extension relation on a finite ``domain``.

    ``candidate`` extends ``base`` when for every ``x`` in ``domain``
    either the two agree or ``base(x)`` is undefined.  Used by tests
    and the runtime invariant checker to validate Lemma 7.
    """
    for argument in domain:
        base_value = base(argument)
        if is_bottom(base_value):
            continue
        if candidate(argument) != base_value:
            return False
    return True
