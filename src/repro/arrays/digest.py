"""Stable structural content digests for interned arrays.

:class:`~repro.arrays.store.InternedArray` nodes carry a
``key_token`` — a process-local ``object()`` sentinel that makes
typed-structure identity an O(1) dictionary key *within* one process.
This module adds the cross-process counterpart: a **content digest**,
a 16-byte BLAKE2b hash of the typed structure that is equal for equal
typed structures in every process and under every kernel
(``REPRO_KERNEL=flat|python``), and distinct for typed-distinct ones
(``(True, True)`` vs ``(1, 1)`` digest differently, exactly as they
intern differently).

The digest is *incremental over child digests*: a node's hash is
computed from its children's cached digests, so digesting an entire
store costs O(unique nodes x n), never O(leaves).  It is memoised in
the node's instance dict (``_content_digest``), paid once per unique
node per process, and — like every interned-array attribute — never
pickled (:meth:`InternedArray.__reduce__` reduces to a plain tuple).

Only **stable leaves** digest: exact-typed ``bool``, ``int``,
``float``, ``str``, ``bytes``, ``None`` and :data:`repro.types.BOTTOM`.
Anything else (arbitrary Byzantine garbage objects, exotic subclasses)
makes the digest ``None``, and undigestable nodes are simply never
persisted — the cache degrades to a miss, it never guesses.

Floats digest by their IEEE-754 big-endian bit pattern, so ``-0.0``,
``0.0`` and distinct NaN payloads stay distinct, matching typed-leaf
identity.  ``bool`` is matched by exact type before ``int`` lookup
ever happens (the tag table is keyed by ``type(value)``), so the
``bool``/``int`` subtype trap cannot conflate them.

The tagged JSON codec at the bottom (:func:`encode_value` /
:func:`decode_value`) round-trips stable leaves and tuples of them
losslessly through the persistent cache's JSON segments.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any, Dict, Iterable, List, Optional

from repro.arrays.store import InternedArray
from repro.types import BOTTOM, is_bottom

#: Digest width in bytes (BLAKE2b supports 1..64; 16 gives a 128-bit
#: collision bound, far beyond any conceivable store size).
DIGEST_BYTES = 16

#: Stable leaf types, keyed by *exact* type so subclasses (including
#: the bool-is-int trap, and any adversarial subclass with overridden
#: equality) fall through to "undigestable".
_LEAF_TAGS: Dict[type, bytes] = {
    bool: b"b",
    int: b"i",
    float: b"f",
    str: b"s",
    bytes: b"y",
    type(None): b"z",
}


def _hash(payload: bytes) -> bytes:
    return hashlib.blake2b(payload, digest_size=DIGEST_BYTES).digest()


_BOTTOM_DIGEST = _hash(b"_")


def leaf_digest(value: Any) -> Optional[bytes]:
    """Digest of one typed leaf, or ``None`` if it is not stable.

    The encoding is tag-plus-payload, so values of different types
    never share bytes even when they compare equal (``True`` vs ``1``,
    ``1`` vs ``1.0``, ``"1"`` vs ``b"1"``).
    """
    if is_bottom(value):
        return _BOTTOM_DIGEST
    tag = _LEAF_TAGS.get(type(value))
    if tag is None:
        return None
    if tag == b"b":
        return _hash(b"b1" if value else b"b0")
    if tag == b"i":
        return _hash(b"i" + str(value).encode("ascii"))
    if tag == b"f":
        return _hash(b"f" + struct.pack(">d", value))
    if tag == b"s":
        return _hash(b"s" + value.encode("utf-8"))
    if tag == b"y":
        return _hash(b"y" + value)
    return _hash(b"z")


def content_digest(node: InternedArray) -> Optional[bytes]:
    """The stable structural digest of a canonical node (memoised).

    Equal across processes and kernels for equal typed structure;
    ``None`` (memoised too) when any leaf is unstable.  Children are
    digested first and cached, so the amortised cost is O(n) per
    unique node.
    """
    try:
        return node._content_digest
    except AttributeError:
        pass
    hasher = hashlib.blake2b(b"A", digest_size=DIGEST_BYTES)
    digest: Optional[bytes] = None
    for component in node:
        if type(component) is InternedArray:
            child = content_digest(component)
            if child is None:
                break
            hasher.update(b"T")
            hasher.update(child)
        else:
            leaf = leaf_digest(component)
            if leaf is None:
                break
            hasher.update(b"L")
            hasher.update(leaf)
    else:
        digest = hasher.digest()
    node._content_digest = digest
    return digest


def value_digest(value: Any) -> Optional[bytes]:
    """Digest of an arbitrary protocol value (node or stable leaf).

    Plain (un-interned) tuples return ``None``: only canonical nodes
    carry the memoised incremental digest, and every persistable
    code path holds canonical nodes already.
    """
    if type(value) is InternedArray:
        return content_digest(value)
    if isinstance(value, tuple):
        return None
    return leaf_digest(value)


def values_fingerprint(values: Iterable[Any]) -> Optional[str]:
    """Order-insensitive hex fingerprint of a collection of values.

    Used to fingerprint value alphabets and cost-policy parameters in
    persistent-cache keys; ``None`` if any member is unstable (the
    cache then simply stays out of the loop).
    """
    digests: List[bytes] = []
    for value in values:
        digest = value_digest(value)
        if digest is None:
            return None
        digests.append(digest)
    hasher = hashlib.blake2b(digest_size=DIGEST_BYTES)
    for digest in sorted(digests):
        hasher.update(digest)
    return hasher.hexdigest()


def encode_leaf(value: Any) -> Optional[List[Any]]:
    """Lossless tagged-JSON encoding of a stable leaf, else ``None``."""
    if is_bottom(value):
        return ["_"]
    tag = _LEAF_TAGS.get(type(value))
    if tag is None:
        return None
    if tag == b"b":
        return ["b", 1 if value else 0]
    if tag == b"i":
        return ["i", str(value)]
    if tag == b"f":
        return ["f", struct.pack(">d", value).hex()]
    if tag == b"s":
        return ["s", value]
    if tag == b"y":
        return ["y", value.hex()]
    return ["z"]


def decode_leaf(encoded: List[Any]) -> Any:
    """Inverse of :func:`encode_leaf` (raises on malformed input)."""
    tag = encoded[0]
    if tag == "_":
        return BOTTOM
    if tag == "b":
        return bool(encoded[1])
    if tag == "i":
        return int(encoded[1])
    if tag == "f":
        return struct.unpack(">d", bytes.fromhex(encoded[1]))[0]
    if tag == "s":
        return str(encoded[1])
    if tag == "y":
        return bytes.fromhex(encoded[1])
    if tag == "z":
        return None
    raise ValueError(f"unknown leaf tag {tag!r}")


def encode_value(value: Any) -> Optional[List[Any]]:
    """Tagged-JSON encoding of a stable leaf or (nested) tuple of them.

    Decision values and other persisted verdicts route through this;
    ``None`` means "not encodable — do not persist".
    """
    if isinstance(value, tuple):
        parts: List[Any] = []
        for component in value:
            encoded = encode_value(component)
            if encoded is None:
                return None
            parts.append(encoded)
        return ["t", parts]
    return encode_leaf(value)


def decode_value(encoded: List[Any]) -> Any:
    """Inverse of :func:`encode_value` (raises on malformed input)."""
    if encoded[0] == "t":
        return tuple(decode_value(part) for part in encoded[1])
    return decode_leaf(encoded)
