"""Cross-run persistent structural sharing: content-addressed warm caches.

PR 3 made repeated subtrees shared *within* a process (hash-consing),
PR 7 compiled them into flat numpy tables — but every new process
still rebuilds the :class:`~repro.arrays.store.ArrayStore`, the
legality-verdict memos and the expansion caches from nothing.  This
module is the disk layer underneath all three: a content-addressed
store keyed on the stable structural digests of
:mod:`repro.arrays.digest`, so the canonical DAG and the pure verdicts
derived from it survive across executions, sweep cells, fuzz campaigns
and bench runs.

On-disk layout (one directory, opt-in via ``REPRO_CACHE_DIR`` /
``repro bench --cache-dir`` / ``sweep(..., cache=...)``)::

    manifest.jsonl      append-only: one JSON line per segment
    seg-<sha>.json      immutable content-addressed segments

Two segment kinds exist.  ``nodes`` segments serialise a store's new
canonical nodes in intern (child-before-parent) order: a shared leaf
table plus one row per node whose components are segment-local row
indices (``>= 0``), leaf codes (``-(code + 1)`` — the flat kernel's
encoding), or digest-hex strings referencing nodes from earlier
segments.  ``map`` segments carry ``key -> value`` verdict tables
(legality booleans, tagged-JSON decision values, expansion-result
digests), one table per *fingerprint*.

Every fingerprint embeds the persistence schema version, the active
kernel and the cost-policy constants (see :meth:`PersistentStore.\
fingerprint`), plus per-kind parameters such as the value-alphabet
digest — so an entry written under different semantics is simply
invisible, never silently reused.

Concurrency: segments are written to a temp file and ``os.replace``\
d into their content-addressed name, so concurrent writers producing
the same content collide harmlessly and different content never
clobbers.  The manifest is append-only via ``O_APPEND`` single-write
lines; a reader skips torn or duplicate lines.  A segment whose bytes
do not match the SHA recorded in the manifest is *quarantined*
(renamed aside, counted via ``persist.quarantined``) and its entries
recomputed rather than trusted.

The cache is a pure performance layer: a cold run, a warm run and a
cache-disabled run produce pickle-equal results — every persisted
value is the output of a pure function of content-digested inputs
(legality of a node, an EIG decision, a ``phi_b`` expansion under a
fingerprinted OUT table), and every read is verified-or-recomputed.

Observability: ``persist.{hit,miss,load,flush,quarantined}`` counters
and the ``persist.bytes`` gauge flow through the active observer (see
docs/observability.md); the same numbers are kept in
:attr:`PersistentStore.counters` for reports that run unobserved.
"""

from __future__ import annotations

import contextlib
import hashlib
import json
import os
import weakref
from pathlib import Path
from typing import (
    Any,
    Dict,
    Iterator,
    List,
    Optional,
    Set,
    Tuple,
    Union,
)

import repro.obs.core as _obs
from repro.arrays.digest import (
    DIGEST_BYTES,
    content_digest,
    decode_leaf,
    encode_leaf,
    leaf_digest,
)
from repro.arrays.store import ArrayStore, InternedArray, shared_store
from repro.errors import ProtocolViolation

#: Bumped whenever the segment or digest encoding changes; part of
#: every fingerprint, so old caches go stale instead of wrong.
SCHEMA_VERSION = 1

#: The opt-in environment switch: a directory path enables the cache
#: for the whole process (overridable per-scope via :func:`using_cache`).
CACHE_ENV = "REPRO_CACHE_DIR"

#: Sentinel distinguishing "no entry" from a stored ``None``-ish value.
MISSING: Any = object()

CachePath = Union[str, "os.PathLike[str]"]

# Module functions that manage the process-wide cache handle.  The
# cache is persistence state, not protocol state: every value it
# serves is the output of a pure function of content-digested inputs,
# so which process computed it can never alter a protocol-visible
# outcome (pinned by the cold/warm/disabled byte-identity tests).
PURITY_EXEMPT = {
    "active": (
        "reads REPRO_CACHE_DIR and memoises the resulting handle in a "
        "module global; the cache only changes how fast pure verdicts "
        "are re-derived, never what they are"
    ),
    "store_for": (
        "memoises one PersistentStore per directory in a module-global "
        "registry so repeated scopes share loaded segments; the store "
        "is observationally pure (verified-or-recomputed reads)"
    ),
    "using_cache": (
        "swaps the module-global cache override for a scope and "
        "restores it; the sanctioned way bench/sweep select a cache "
        "directory (or disable caching) without mutating the env"
    ),
    "configure_cache": (
        "sets the module-global cache override for long-lived embeds; "
        "same observational-purity argument as using_cache"
    ),
    "reset_cache": (
        "clears the module-global override back to the environment "
        "default (the inverse of configure_cache)"
    ),
    "forget_caches": (
        "drops the memoised handles so tests can simulate a process "
        "restart against the same directory"
    ),
}


class _StoreState:
    """Per-:class:`ArrayStore` persistence bookkeeping.

    ``exported`` is the intern-order watermark (rows before it are
    already on disk or came from disk); ``index`` maps content digest
    to the live canonical node, resolving cross-segment references;
    ``loaded`` names the segments already applied to this store.
    """

    __slots__ = ("exported", "index", "loaded")

    def __init__(self) -> None:
        self.exported = 0
        self.index: Dict[bytes, InternedArray] = {}
        self.loaded: Set[str] = set()


def _blake(blob: bytes) -> str:
    return hashlib.blake2b(blob, digest_size=DIGEST_BYTES).hexdigest()


class PersistentStore:
    """One cache directory: manifest, segments and in-memory tables.

    Thread-unsafe by design (the repro runtime is single-threaded per
    process); safe against *other processes* writing the same
    directory, per the module docstring.
    """

    def __init__(self, root: CachePath):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.manifest_path = self.root / "manifest.jsonl"
        self._manifest: List[Dict[str, Any]] = []
        self._segments: Set[str] = set()
        self._manifest_loaded = False
        # fingerprint -> key -> value (loaded union recorded).
        self._maps: Dict[str, Dict[str, Any]] = {}
        # fingerprint -> entries recorded since the last flush.
        self._pending: Dict[str, Dict[str, Any]] = {}
        # Stores warmed or written through this cache (weak: a cleared
        # registry must be collectable even while the cache lives on).
        self._stores: List["weakref.ref[ArrayStore]"] = []
        self._tmp_counter = 0
        self._bytes = 0
        #: Mirror of the ``persist.*`` observer counters, always
        #: maintained (bench reads these even when unobserved).
        self.counters: Dict[str, int] = {
            "hit": 0,
            "miss": 0,
            "load": 0,
            "flush": 0,
            "quarantined": 0,
            "skipped": 0,
        }

    # -- fingerprints ------------------------------------------------------

    def fingerprint(self, detail: str) -> str:
        """The full versioned fingerprint for a ``detail`` suffix.

        Prefixes schema version, active kernel and the cost-policy
        constants, so entries written under any different semantics
        are never visible, let alone reused.
        """
        from repro.arrays import flat as _flat
        from repro.arrays.encoding import HEADER_BITS, NULL_BITS

        return (
            f"v{SCHEMA_VERSION};kernel={_flat.kernel_name()};"
            f"costs={HEADER_BITS}.{NULL_BITS};{detail}"
        )

    def _nodes_detail(self, n: int) -> str:
        return f"nodes;n={n}"

    # -- counters ----------------------------------------------------------

    def _count(self, name: str, amount: int = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + amount
        observer = _obs.ACTIVE
        if observer is not None:
            observer.count(f"persist.{name}", amount)

    def _gauge_bytes(self) -> None:
        observer = _obs.ACTIVE
        if observer is not None:
            observer.gauge("persist.bytes", self._bytes)

    # -- manifest ----------------------------------------------------------

    def _ensure_manifest(self) -> None:
        if self._manifest_loaded:
            return
        self._manifest_loaded = True
        try:
            raw = self.manifest_path.read_bytes()
        except OSError:
            return
        for line in raw.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                # A torn line from a concurrent appender; later lines
                # may still be whole, so keep going.
                self._count("skipped")
                continue
            if not isinstance(entry, dict):
                continue
            if entry.get("v") != SCHEMA_VERSION:
                continue
            segment = entry.get("segment")
            if not isinstance(segment, str) or segment in self._segments:
                continue
            self._segments.add(segment)
            self._manifest.append(entry)
            self._bytes += int(entry.get("bytes", 0) or 0)
        self._gauge_bytes()

    def _quarantine(self, entry: Dict[str, Any], path: Path) -> None:
        entry["bad"] = True
        self._count("quarantined")
        try:
            os.replace(path, path.with_name(path.name + ".quarantined"))
        except OSError:
            pass  # already moved by another reader, or unwritable dir

    def _load_segment(self, entry: Dict[str, Any]) -> Optional[Dict[str, Any]]:
        if entry.get("bad"):
            return None
        path = self.root / str(entry["segment"])
        try:
            blob = path.read_bytes()
        except OSError:
            entry["bad"] = True
            self._count("skipped")
            return None
        if _blake(blob) != entry.get("sha"):
            self._quarantine(entry, path)
            return None
        try:
            payload = json.loads(blob)
        except ValueError:
            self._quarantine(entry, path)
            return None
        if not isinstance(payload, dict) or payload.get("kind") != entry.get(
            "kind"
        ):
            self._quarantine(entry, path)
            return None
        self._count("load")
        return payload

    # -- verdict maps ------------------------------------------------------

    def _ensure_map(self, fingerprint: str) -> Dict[str, Any]:
        table = self._maps.get(fingerprint)
        if table is not None:
            return table
        self._ensure_manifest()
        table = {}
        self._maps[fingerprint] = table
        for entry in self._manifest:
            if entry.get("kind") != "map" or entry.get("fp") != fingerprint:
                continue
            payload = self._load_segment(entry)
            if payload is None:
                continue
            entries = payload.get("entries")
            if isinstance(entries, dict):
                table.update(entries)
        return table

    def map_get(self, detail: str, key: str) -> Any:
        """The stored value under ``(detail fingerprint, key)``.

        Returns :data:`MISSING` when absent; hit/miss counted either
        way.  Callers must type-check the returned JSON value before
        trusting it (a poisoned entry downgrades to a miss, never to a
        wrong answer).
        """
        value = self._ensure_map(self.fingerprint(detail)).get(key, MISSING)
        self._count("hit" if value is not MISSING else "miss")
        return value

    def map_put(self, detail: str, key: str, value: Any) -> None:
        """Record a (pure, JSON-encoded) verdict for the next flush."""
        fingerprint = self.fingerprint(detail)
        table = self._ensure_map(fingerprint)
        if key in table and table[key] == value:
            return
        table[key] = value
        self._pending.setdefault(fingerprint, {})[key] = value

    # -- node tables -------------------------------------------------------

    def _store_state(self, store: ArrayStore) -> _StoreState:
        state = store.persist_state
        if not isinstance(state, _StoreState):
            state = _StoreState()
            store.persist_state = state
            self._stores.append(weakref.ref(store))
        return state

    def warm_store(self, store: ArrayStore) -> None:
        """Replay every matching ``nodes`` segment into ``store``.

        Idempotent per segment; the watermark is set afterwards so the
        replayed rows are never re-exported.
        """
        self._ensure_manifest()
        state = self._store_state(store)
        wanted = self.fingerprint(self._nodes_detail(store.n))
        for entry in self._manifest:
            if entry.get("kind") != "nodes" or entry.get("fp") != wanted:
                continue
            segment = str(entry["segment"])
            if segment in state.loaded:
                continue
            state.loaded.add(segment)
            payload = self._load_segment(entry)
            if payload is not None:
                self._apply_nodes(store, state, payload)
        state.exported = len(store.interned_nodes())

    def _apply_nodes(
        self,
        store: ArrayStore,
        state: _StoreState,
        payload: Dict[str, Any],
    ) -> None:
        raw_leaves = payload.get("leaves")
        raw_rows = payload.get("rows")
        if not isinstance(raw_leaves, list) or not isinstance(raw_rows, list):
            self._count("skipped")
            return
        leaves: List[Any] = []
        for encoded in raw_leaves:
            try:
                leaves.append(decode_leaf(encoded))
            except (ValueError, LookupError, TypeError):
                leaves.append(MISSING)
        local: List[Optional[InternedArray]] = []
        for row in raw_rows:
            components = self._decode_row(row, leaves, local, state)
            if components is None:
                local.append(None)
                self._count("skipped")
                continue
            try:
                node = store.intern(tuple(components))
            except ProtocolViolation:
                local.append(None)
                self._count("skipped")
                continue
            if type(node) is not InternedArray:
                local.append(None)
                continue
            digest = content_digest(node)
            if digest is not None:
                state.index[digest] = node
            local.append(node)

    def _decode_row(
        self,
        row: Any,
        leaves: List[Any],
        local: List[Optional[InternedArray]],
        state: _StoreState,
    ) -> Optional[List[Any]]:
        if not isinstance(row, list):
            return None
        components: List[Any] = []
        for ref in row:
            if isinstance(ref, bool):
                return None
            if isinstance(ref, int):
                if ref >= 0:
                    child = local[ref] if ref < len(local) else None
                    if child is None:
                        return None
                    components.append(child)
                else:
                    position = -ref - 1
                    if position >= len(leaves):
                        return None
                    leaf = leaves[position]
                    if leaf is MISSING:
                        return None
                    components.append(leaf)
            elif isinstance(ref, str):
                try:
                    external = state.index.get(bytes.fromhex(ref))
                except ValueError:
                    return None
                if external is None:
                    return None
                components.append(external)
            else:
                return None
        return components

    def node_for(
        self, store: ArrayStore, digest_hex: str
    ) -> Optional[InternedArray]:
        """The live node with this content digest, if the cache knows it."""
        state = store.persist_state
        if not isinstance(state, _StoreState):
            return None
        try:
            digest = bytes.fromhex(digest_hex)
        except ValueError:
            return None
        return state.index.get(digest)

    def register_node(
        self, store: ArrayStore, node: InternedArray
    ) -> Optional[str]:
        """Index ``node`` for cross-run reference; its digest hex, or None."""
        digest = content_digest(node)
        if digest is None:
            return None
        self._store_state(store).index[digest] = node
        return digest.hex()

    def _export_store(self, store: ArrayStore) -> int:
        state = store.persist_state
        if not isinstance(state, _StoreState):
            return 0
        order = store.interned_nodes()
        if state.exported >= len(order):
            return 0
        new_nodes = order[state.exported :]
        state.exported = len(order)
        leaves: List[Any] = []
        leaf_codes: Dict[Tuple[Any, ...], int] = {}
        rows: List[List[Any]] = []
        row_digests: List[bytes] = []
        local_rows: Dict[object, int] = {}
        for node in new_nodes:
            digest = content_digest(node)
            if digest is None:
                continue  # unstable leaves: never persisted
            refs = self._encode_row(node, leaf_codes, leaves, local_rows, state)
            if refs is None:
                continue
            local_rows[node.key_token] = len(rows)
            rows.append(refs)
            row_digests.append(digest)
            state.index[digest] = node
        if not rows:
            return 0
        payload: Dict[str, Any] = {
            "kind": "nodes",
            "n": store.n,
            "leaves": leaves,
            "rows": rows,
            "check": _blake(b"".join(row_digests)),
        }
        detail = self._nodes_detail(store.n)
        return int(
            self._write_segment(payload, "nodes", detail, len(rows), store.n)
        )

    def _encode_row(
        self,
        node: InternedArray,
        leaf_codes: Dict[Tuple[Any, ...], int],
        leaves: List[Any],
        local_rows: Dict[object, int],
        state: _StoreState,
    ) -> Optional[List[Any]]:
        refs: List[Any] = []
        for component in node:
            if type(component) is InternedArray:
                row = local_rows.get(component.key_token)
                if row is not None:
                    refs.append(row)
                    continue
                child_digest = content_digest(component)
                if child_digest is None:
                    return None
                refs.append(child_digest.hex())
            else:
                encoded = encode_leaf(component)
                if encoded is None:
                    return None
                token = tuple(encoded)
                code = leaf_codes.get(token)
                if code is None:
                    code = leaf_codes[token] = len(leaves)
                    leaves.append(encoded)
                refs.append(-(code + 1))
        return refs

    # -- preload / flush ---------------------------------------------------

    def preload_all(self) -> None:
        """Warm every matching table eagerly (pre-fork, so pool workers
        inherit one loaded manifest instead of each re-reading it)."""
        self._ensure_manifest()
        prefix = self.fingerprint("")
        widths: Set[int] = set()
        for entry in self._manifest:
            kind = entry.get("kind")
            fingerprint = entry.get("fp")
            if not isinstance(fingerprint, str):
                continue
            if kind == "nodes" and isinstance(entry.get("n"), int):
                if fingerprint == self.fingerprint(
                    self._nodes_detail(int(entry["n"]))
                ):
                    widths.add(int(entry["n"]))
            elif kind == "map" and fingerprint.startswith(prefix):
                self._ensure_map(fingerprint)
        for n in sorted(widths):
            self.warm_store(shared_store(n))

    def flush(self) -> int:
        """Write every delta (new nodes, new verdicts) to disk.

        Returns the number of segments written.  Safe to call any time
        — an empty delta writes nothing.
        """
        self._ensure_manifest()
        written = 0
        live: List["weakref.ref[ArrayStore]"] = []
        for ref in self._stores:
            store = ref()
            if store is None:
                continue
            live.append(ref)
            written += self._export_store(store)
        self._stores = live
        for fingerprint, entries in self._pending.items():
            if not entries:
                continue
            payload = {
                "kind": "map",
                "fp": fingerprint,
                "entries": dict(entries),
            }
            written += int(
                self._write_segment_fp(
                    payload, "map", fingerprint, len(entries), None
                )
            )
        self._pending = {}
        if written:
            self._count("flush", written)
            self._gauge_bytes()
        return written

    def _write_segment(
        self,
        payload: Dict[str, Any],
        kind: str,
        detail: str,
        count: int,
        n: Optional[int],
    ) -> bool:
        return self._write_segment_fp(
            payload, kind, self.fingerprint(detail), count, n
        )

    def _write_segment_fp(
        self,
        payload: Dict[str, Any],
        kind: str,
        fingerprint: str,
        count: int,
        n: Optional[int],
    ) -> bool:
        payload = dict(payload)
        payload["fp"] = fingerprint
        blob = json.dumps(
            payload, separators=(",", ":"), sort_keys=True
        ).encode("utf-8")
        sha = _blake(blob)
        name = f"seg-{sha}.json"
        if name in self._segments:
            return False
        path = self.root / name
        if not path.exists():
            # Temp-then-replace: a concurrent writer producing the
            # same content lands on the same name with the same bytes.
            self._tmp_counter += 1
            tmp = self.root / f".tmp-{os.getpid()}-{self._tmp_counter}"
            tmp.write_bytes(blob)
            os.replace(tmp, path)
        entry: Dict[str, Any] = {
            "v": SCHEMA_VERSION,
            "kind": kind,
            "fp": fingerprint,
            "segment": name,
            "entries": count,
            "bytes": len(blob),
            "sha": sha,
        }
        if n is not None:
            entry["n"] = n
        line = json.dumps(entry, separators=(",", ":"), sort_keys=True)
        fd = os.open(
            self.manifest_path,
            os.O_WRONLY | os.O_APPEND | os.O_CREAT,
            0o644,
        )
        try:
            os.write(fd, (line + "\n").encode("utf-8"))
        finally:
            os.close(fd)
        self._segments.add(name)
        self._manifest.append(entry)
        self._bytes += len(blob)
        return True

    # -- admin: stats / verify / gc ---------------------------------------

    def stats(self) -> Dict[str, Any]:
        """Manifest summary plus this process's counters (JSON-safe)."""
        self._ensure_manifest()
        kinds: Dict[str, int] = {}
        entries = 0
        widths: Set[int] = set()
        fingerprints: Set[str] = set()
        for entry in self._manifest:
            kind = str(entry.get("kind"))
            kinds[kind] = kinds.get(kind, 0) + 1
            entries += int(entry.get("entries", 0) or 0)
            if isinstance(entry.get("n"), int):
                widths.add(int(entry["n"]))
            if isinstance(entry.get("fp"), str):
                fingerprints.add(entry["fp"])
        return {
            "path": str(self.root),
            "segments": len(self._manifest),
            "kinds": kinds,
            "entries": entries,
            "bytes": self._bytes,
            "widths": sorted(widths),
            "fingerprints": len(fingerprints),
            "counters": dict(self.counters),
        }

    def verify(self, sample: int = 0) -> Dict[str, Any]:
        """Re-read and re-digest segments to detect corruption.

        Checks every manifest entry's file hash, then fully re-derives
        the digest arithmetic of up to ``sample`` ``nodes`` segments
        (0 = all) against their recorded ``check`` digests — the same
        incremental scheme :func:`repro.arrays.digest.content_digest`
        uses, recomputed from the serialized rows alone.
        """
        self._ensure_manifest()
        checked = 0
        redigested = 0
        corrupt: List[Dict[str, str]] = []
        for entry in self._manifest:
            name = str(entry.get("segment"))
            path = self.root / name
            checked += 1
            try:
                blob = path.read_bytes()
            except OSError:
                corrupt.append({"segment": name, "error": "missing"})
                continue
            if _blake(blob) != entry.get("sha"):
                corrupt.append({"segment": name, "error": "sha-mismatch"})
                continue
            if entry.get("kind") != "nodes":
                continue
            if sample and redigested >= sample:
                continue
            redigested += 1
            try:
                payload = json.loads(blob)
                check = self._recompute_check(payload)
            except (ValueError, LookupError, TypeError):
                check = None
            if check is None or check != payload.get("check"):
                corrupt.append({"segment": name, "error": "check-mismatch"})
        return {
            "segments": checked,
            "redigested": redigested,
            "corrupt": corrupt,
            "ok": not corrupt,
        }

    def _recompute_check(self, payload: Dict[str, Any]) -> Optional[str]:
        leaf_digests: List[Optional[bytes]] = []
        for encoded in payload.get("leaves", []):
            leaf_digests.append(leaf_digest(decode_leaf(encoded)))
        row_digests: List[bytes] = []
        for row in payload.get("rows", []):
            hasher = hashlib.blake2b(b"A", digest_size=DIGEST_BYTES)
            for ref in row:
                if isinstance(ref, bool):
                    return None
                if isinstance(ref, int) and ref >= 0:
                    hasher.update(b"T")
                    hasher.update(row_digests[ref])
                elif isinstance(ref, int):
                    leaf = leaf_digests[-ref - 1]
                    if leaf is None:
                        return None
                    hasher.update(b"L")
                    hasher.update(leaf)
                elif isinstance(ref, str):
                    hasher.update(b"T")
                    hasher.update(bytes.fromhex(ref))
                else:
                    return None
            row_digests.append(hasher.digest())
        return _blake(b"".join(row_digests))

    def gc(self, keep_days: float, now: float) -> Dict[str, Any]:
        """Prune segments older than ``keep_days`` (mtime-based).

        ``now`` is an epoch timestamp supplied by the caller (the CLI
        passes ``time.time()``; this package is under the determinism
        lint and never reads the clock itself).  Rewrites the manifest
        atomically; intended as an offline admin operation, not for
        use concurrent with active writers.
        """
        self._ensure_manifest()
        cutoff = now - keep_days * 86400.0
        kept: List[Dict[str, Any]] = []
        removed = 0
        freed = 0
        for entry in self._manifest:
            path = self.root / str(entry.get("segment"))
            try:
                mtime = path.stat().st_mtime
            except OSError:
                removed += 1  # file already gone: drop the line too
                continue
            if mtime < cutoff:
                try:
                    os.unlink(path)
                except OSError:
                    pass
                removed += 1
                freed += int(entry.get("bytes", 0) or 0)
            else:
                kept.append(entry)
        lines = "".join(
            json.dumps(entry, separators=(",", ":"), sort_keys=True) + "\n"
            for entry in kept
        )
        self._tmp_counter += 1
        tmp = self.root / f".tmp-{os.getpid()}-{self._tmp_counter}"
        tmp.write_bytes(lines.encode("utf-8"))
        os.replace(tmp, self.manifest_path)
        self._manifest = kept
        self._segments = {str(entry["segment"]) for entry in kept}
        self._bytes -= freed
        return {"kept": len(kept), "removed": removed, "bytes_freed": freed}


# -- process-wide cache selection ------------------------------------------

_STORES_BY_PATH: Dict[str, PersistentStore] = {}
_UNSET: Any = object()
_OVERRIDE: Any = _UNSET
_ENV_MEMO: Tuple[Optional[str], Optional[PersistentStore]] = (None, None)


def store_for(path: CachePath) -> PersistentStore:
    """The memoised :class:`PersistentStore` for a directory."""
    key = str(Path(path))
    cache = _STORES_BY_PATH.get(key)
    if cache is None:
        cache = _STORES_BY_PATH[key] = PersistentStore(key)
    return cache


def active() -> Optional[PersistentStore]:
    """The cache in effect: the scope override, else ``REPRO_CACHE_DIR``."""
    if _OVERRIDE is not _UNSET:
        if _OVERRIDE is None:
            return None
        return _OVERRIDE  # type: ignore[no-any-return]
    global _ENV_MEMO
    raw = os.environ.get(CACHE_ENV)
    if raw == _ENV_MEMO[0]:
        return _ENV_MEMO[1]
    cache = store_for(raw) if raw else None
    _ENV_MEMO = (raw, cache)
    return cache


@contextlib.contextmanager
def using_cache(path: Any) -> Iterator[Optional[PersistentStore]]:
    """Scope the active cache: a path enables it, ``None``/``False``
    disables it (even when ``REPRO_CACHE_DIR`` is set)."""
    global _OVERRIDE
    prior = _OVERRIDE
    _OVERRIDE = None if path is None or path is False else store_for(path)
    try:
        yield _OVERRIDE
    finally:
        _OVERRIDE = prior


def configure_cache(path: Any) -> Optional[PersistentStore]:
    """Set the process-wide cache override (``None``/``False`` disables)."""
    global _OVERRIDE
    _OVERRIDE = None if path is None or path is False else store_for(path)
    return _OVERRIDE  # type: ignore[no-any-return]


def reset_cache() -> None:
    """Drop the override; ``REPRO_CACHE_DIR`` governs again."""
    global _OVERRIDE
    _OVERRIDE = _UNSET


def forget_caches() -> None:
    """Forget memoised handles (tests: simulate a process restart)."""
    global _ENV_MEMO
    _STORES_BY_PATH.clear()
    _ENV_MEMO = (None, None)


def warm_shared_store(store: ArrayStore) -> None:
    """Hook for :func:`repro.arrays.store.shared_store`: warm a freshly
    created shared store from the active cache, if any."""
    cache = active()
    if cache is not None:
        cache.warm_store(store)


def flush_active() -> int:
    """Flush the active cache's deltas, if any; segments written."""
    cache = active()
    if cache is None:
        return 0
    return cache.flush()
