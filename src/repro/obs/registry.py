"""The instrumentation registry: named counters and gauges.

One flat namespace of dotted counter names absorbs every quantity the
runtime already meters ad hoc — the :class:`~repro.runtime.metrics
.RoundUsage` bit meters, the :class:`~repro.arrays.store.ArrayStore`
intern hit/miss split, the full-information legality-verdict and
reconstruction memo hit rates, the compact expansion cache, the
network's payload size caches, and the parallel executor's per-worker
cell counts.

Counters are integers and deterministic for a fixed workload in a
fresh process (cache hit/miss splits depend on what a *process* has
already interned, so they are reproducible per run script, not per
isolated call).  Gauges hold the explicitly nondeterministic
quantities — wall-clock seconds of pool workers, idle time — and are
reported only in the nondeterministic section of an event log (see
``docs/observability.md``).

Hit-rate convention: a cache named ``x`` exposes ``x.hit`` and
``x.miss`` counters; :meth:`InstrumentRegistry.hit_rates` derives the
rates for every such pair.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

#: Suffixes the hit-rate convention pairs up.
_HIT, _MISS = ".hit", ".miss"


class InstrumentRegistry:
    """A process-local set of named counters and gauges."""

    __slots__ = ("_counters", "_gauges")

    def __init__(self) -> None:
        self._counters: Dict[str, int] = {}
        self._gauges: Dict[str, float] = {}

    # -- counters ----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        """Add ``delta`` to counter ``name`` (created at zero)."""
        self._counters[name] = self._counters.get(name, 0) + delta

    def counter(self, name: str) -> int:
        """Current value of one counter (zero if never touched)."""
        return self._counters.get(name, 0)

    def counters(self) -> Dict[str, int]:
        """All counters, in sorted-name order (a copy)."""
        return {name: self._counters[name] for name in sorted(self._counters)}

    # -- gauges ------------------------------------------------------------

    def set_gauge(self, name: str, value: float) -> None:
        """Set gauge ``name`` to ``value`` (last write wins)."""
        self._gauges[name] = float(value)

    def gauge(self, name: str) -> Optional[float]:
        """Current value of one gauge, or ``None`` if never set."""
        return self._gauges.get(name)

    def gauges(self) -> Dict[str, float]:
        """All gauges, in sorted-name order (a copy)."""
        return {name: self._gauges[name] for name in sorted(self._gauges)}

    # -- derived -----------------------------------------------------------

    def hit_rates(self) -> Dict[str, Tuple[float, int, int]]:
        """``cache -> (rate, hits, misses)`` for every hit/miss pair.

        A cache appears when either side of its pair exists; the rate
        is ``hits / (hits + misses)`` and ``0.0`` for an untouched
        pair.
        """
        caches: Dict[str, Tuple[float, int, int]] = {}
        names = set()
        for name in self._counters:
            if name.endswith(_HIT):
                names.add(name[: -len(_HIT)])
            elif name.endswith(_MISS):
                names.add(name[: -len(_MISS)])
        for cache in sorted(names):
            hits = self._counters.get(cache + _HIT, 0)
            misses = self._counters.get(cache + _MISS, 0)
            total = hits + misses
            rate = hits / total if total else 0.0
            caches[cache] = (rate, hits, misses)
        return caches

    def absorb(self, counters: Dict[str, int]) -> None:
        """Fold a ``name -> delta`` mapping into the counters."""
        for name, delta in counters.items():
            self.count(name, delta)
