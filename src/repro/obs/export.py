"""Exporters: event logs to Chrome-trace/Perfetto and speedscope.

Two offline translations of a recorded event log
(:mod:`repro.obs.events`) into formats existing profiling UIs load
directly:

- :func:`chrome_trace` emits the Chrome Trace Event Format (the JSON
  ``{"traceEvents": [...]}`` shape Perfetto and ``chrome://tracing``
  ingest).  Each recorded run becomes a process; its rounds become
  slices on a dedicated "rounds" track, each processor gets its own
  thread track, and every causal ``deliver`` edge becomes a flow
  event (``ph: s``/``f``) arrow from sender to receiver.  Timestamps
  are the **logical clock** — one microsecond per ``step`` — so the
  rendering is deterministic and diffable, not a wall-time profile.
- :func:`speedscope_profile` turns the merged span profile into a
  speedscope "sampled" profile: each span path contributes one sample
  whose stack is the path's components and whose weight is the span's
  self time.  This half *is* wall-time derived (spans are
  nondeterministic by contract).

:func:`validate_chrome_trace` is the schema gate CI runs over the
exported artifact before upload.
"""

from __future__ import annotations

from typing import Any, Dict, List, Set, Tuple

from repro.obs.summarize import profile_records

#: Synthetic pid hosting the span flame graph (far above any run id).
SPAN_PID = 10_000


def _meta(pid: int, tid: int, name: str, which: str) -> Dict[str, Any]:
    return {
        "ph": "M",
        "name": which,
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "args": {"name": name},
    }


def _span_flame(spans: Dict[str, Dict[str, Any]]) -> List[Dict[str, Any]]:
    """Synthesize X slices laying the merged span tree out as a flame.

    Span profiles are aggregates (count/total/max per path), not
    intervals, so the layout is synthetic: children are placed
    sequentially from their parent's start, with one microsecond per
    recorded second.  Lexicographic path order guarantees a parent is
    laid out before any of its children.
    """
    events: List[Dict[str, Any]] = []
    cursors: Dict[str, float] = {"": 0.0}
    for path in sorted(spans):
        stats = spans[path]
        parent = path.rsplit("/", 1)[0] if "/" in path else ""
        if parent not in cursors:
            # Child recorded without its parent path: treat as a root.
            parent = ""
        start = cursors[parent]
        duration = float(stats["total_s"]) * 1e6
        cursors[parent] = start + duration
        cursors[path] = start
        events.append(
            {
                "ph": "X",
                "name": path.rsplit("/", 1)[-1],
                "cat": "span",
                "pid": SPAN_PID,
                "tid": 0,
                "ts": round(start, 3),
                "dur": round(duration, 3),
                "args": {
                    "path": path,
                    "count": stats["count"],
                    "total_s": stats["total_s"],
                    "max_s": stats["max_s"],
                },
            }
        )
    return events


def chrome_trace(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """Chrome Trace Event Format JSON for one recorded log."""
    events: List[Dict[str, Any]] = []
    pid = 0
    run_id = ""
    round_open_step = 0
    threads_seen: Set[Tuple[int, int]] = set()
    flow_id = 0

    def thread(tid: int, name: str) -> None:
        if (pid, tid) not in threads_seen:
            threads_seen.add((pid, tid))
            events.append(_meta(pid, tid, name, "thread_name"))

    for record in records:
        kind = record.get("kind")
        step = record.get("step", 0)
        if kind == "run_start":
            run_id = str(record.get("run"))
            pid = int(run_id[1:]) if run_id[1:].isdigit() else pid + 1
            events.append(
                _meta(
                    pid, 0,
                    f"run {run_id}: n={record['n']} t={record['t']} "
                    f"{record['adversary']}",
                    "process_name",
                )
            )
            thread(0, "rounds")
        elif kind == "round_start":
            round_open_step = step
        elif kind == "round_end":
            events.append(
                {
                    "ph": "X",
                    "name": f"round {record['round']}",
                    "cat": "round",
                    "pid": pid,
                    "tid": 0,
                    "ts": round_open_step,
                    "dur": max(step - round_open_step, 1),
                    "args": {
                        "messages": record["messages"],
                        "non_null": record["non_null"],
                        "bits": record["bits"],
                    },
                }
            )
        elif kind == "deliver":
            sender = record["sender"]
            receiver = record["receiver"]
            thread(sender, f"p{sender}")
            thread(receiver, f"p{receiver}")
            flow_id += 1
            args = {
                "bits": record["bits"],
                "non_null": record["non_null"],
                "faulty": record["faulty"],
                "round": record["round"],
            }
            events.append(
                {
                    "ph": "X", "name": f"send->{receiver}",
                    "cat": "deliver", "pid": pid, "tid": sender,
                    "ts": step, "dur": 1, "args": args,
                }
            )
            events.append(
                {
                    "ph": "X", "name": f"recv<-{sender}",
                    "cat": "deliver", "pid": pid, "tid": receiver,
                    "ts": step, "dur": 1, "args": args,
                }
            )
            events.append(
                {
                    "ph": "s", "name": "deliver", "cat": "deliver",
                    "id": flow_id, "pid": pid, "tid": sender, "ts": step,
                }
            )
            events.append(
                {
                    "ph": "f", "bp": "e", "name": "deliver",
                    "cat": "deliver", "id": flow_id, "pid": pid,
                    "tid": receiver, "ts": step,
                }
            )
        elif kind == "state":
            process = record["process"]
            thread(process, f"p{process}")
            events.append(
                {
                    "ph": "X", "name": "state", "cat": "state",
                    "pid": pid, "tid": process, "ts": step, "dur": 1,
                    "args": {"summary": record["summary"]},
                }
            )
        elif kind == "decide":
            process = record["process"]
            thread(process, f"p{process}")
            events.append(
                {
                    "ph": "i", "s": "t",
                    "name": f"decide={record['value']!r}",
                    "cat": "decide", "pid": pid, "tid": process,
                    "ts": step,
                }
            )

    profile = profile_records(records)
    spans = profile["spans"]
    if spans:
        events.append(_meta(SPAN_PID, 0, "span profile", "process_name"))
        events.append(_meta(SPAN_PID, 0, "spans", "thread_name"))
        events.extend(_span_flame(spans))
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"clock": "logical step (1 step = 1us)"},
    }


#: Required fields per Chrome-trace phase (beyond ``ph`` itself).
_PH_FIELDS: Dict[str, Tuple[str, ...]] = {
    "M": ("name", "pid", "args"),
    "X": ("name", "pid", "tid", "ts", "dur"),
    "i": ("name", "pid", "tid", "ts", "s"),
    "s": ("name", "id", "pid", "tid", "ts"),
    "f": ("name", "id", "pid", "tid", "ts", "bp"),
}


def validate_chrome_trace(payload: Any) -> List[str]:
    """Schema problems with an exported Chrome trace (empty = valid)."""
    problems: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    events = payload.get("traceEvents")
    if not isinstance(events, list):
        return ["'traceEvents' missing or not a list"]
    flow_starts: Dict[Any, int] = {}
    flow_ends: Dict[Any, int] = {}
    for index, event in enumerate(events):
        if not isinstance(event, dict):
            problems.append(f"event {index}: not an object")
            continue
        ph = event.get("ph")
        if not isinstance(ph, str) or ph not in _PH_FIELDS:
            problems.append(f"event {index}: unknown phase {ph!r}")
            continue
        for field in _PH_FIELDS[ph]:
            if field not in event:
                problems.append(
                    f"event {index}: ph={ph} missing field {field!r}"
                )
        if ph == "s":
            flow_starts[event.get("id")] = (
                flow_starts.get(event.get("id"), 0) + 1
            )
        elif ph == "f":
            flow_ends[event.get("id")] = (
                flow_ends.get(event.get("id"), 0) + 1
            )
    for flow, count in sorted(flow_starts.items(), key=repr):
        if flow_ends.get(flow, 0) != count:
            problems.append(
                f"flow {flow!r}: {count} start(s), "
                f"{flow_ends.get(flow, 0)} finish(es)"
            )
    for flow in sorted(set(flow_ends) - set(flow_starts), key=repr):
        problems.append(f"flow {flow!r}: finish without start")
    return problems


def speedscope_profile(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """A speedscope "sampled" profile of the merged span tree.

    One sample per span path; the stack is the path's components and
    the weight is the path's **self** time (total minus direct
    children), so the flame graph's widths sum correctly.
    """
    spans = profile_records(records)["spans"]
    child_totals: Dict[str, float] = {}
    for path, stats in spans.items():
        if "/" in path:
            parent = path.rsplit("/", 1)[0]
            child_totals[parent] = (
                child_totals.get(parent, 0.0) + float(stats["total_s"])
            )
    frame_index: Dict[str, int] = {}
    frames: List[Dict[str, Any]] = []
    samples: List[List[int]] = []
    weights: List[float] = []
    for path in sorted(spans):
        stack: List[int] = []
        for component in path.split("/"):
            if component not in frame_index:
                frame_index[component] = len(frames)
                frames.append({"name": component})
            stack.append(frame_index[component])
        self_s = float(spans[path]["total_s"]) - child_totals.get(path, 0.0)
        samples.append(stack)
        weights.append(round(max(self_s, 0.0), 6))
    total = round(sum(weights), 6)
    return {
        "$schema": "https://www.speedscope.app/file-format-schema.json",
        "name": "repro span profile",
        "exporter": "repro events export",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [
            {
                "type": "sampled",
                "name": "spans (self time)",
                "unit": "seconds",
                "startValue": 0,
                "endValue": total,
                "samples": samples,
                "weights": weights,
            }
        ],
    }


__all__ = [
    "SPAN_PID",
    "chrome_trace",
    "speedscope_profile",
    "validate_chrome_trace",
]
