"""Hierarchical timing spans, aggregated into a per-run profile.

``with observer.span("eig.decision"):`` times a region with
:func:`time.perf_counter` and folds the duration into a
:class:`SpanProfile` under the span's *path* — the ``/``-joined chain
of the currently open spans, so a ``sweep.cell`` opened inside
``bench.avalanche`` aggregates under ``bench.avalanche/sweep.cell``.
The profile keeps count / total / max per path, not individual
intervals, so recording cost is O(1) per span and the profile stays
small no matter how hot the instrumented region is.

Spans read the wall clock and are therefore **explicitly
nondeterministic**: they never enter the deterministic section of an
event log (records derived from them carry ``"nondeterministic":
true``) and never influence protocol behaviour.  This module is the
single place in the scanned packages allowed to import :mod:`time` —
see ``CLOCK_MODULES`` in :mod:`repro.statics.runner`.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional, Tuple

#: ``path -> (count, total_s, max_s)`` — the snapshot/diff form.
ProfileSnapshot = Dict[str, Tuple[int, float, float]]


class _SpanStats:
    """Aggregate for one span path."""

    __slots__ = ("count", "total_s", "max_s")

    def __init__(self) -> None:
        self.count = 0
        self.total_s = 0.0
        self.max_s = 0.0

    def record(self, duration: float) -> None:
        self.count += 1
        self.total_s += duration
        if duration > self.max_s:
            self.max_s = duration


class SpanProfile:
    """Count / total / max wall seconds per span path."""

    __slots__ = ("_stats",)

    def __init__(self) -> None:
        self._stats: Dict[str, _SpanStats] = {}

    def record(self, path: str, duration: float) -> None:
        stats = self._stats.get(path)
        if stats is None:
            stats = self._stats[path] = _SpanStats()
        stats.record(duration)

    def snapshot(self) -> ProfileSnapshot:
        """The current aggregates, copied (safe to diff against later)."""
        return {
            path: (stats.count, stats.total_s, stats.max_s)
            for path, stats in self._stats.items()
        }

    def since(self, mark: ProfileSnapshot) -> ProfileSnapshot:
        """What accumulated after ``mark`` was taken.

        ``max_s`` cannot be diffed (it is not additive), so the
        current maximum is reported for any path that grew.
        """
        delta: ProfileSnapshot = {}
        for path, (count, total_s, max_s) in self.snapshot().items():
            base = mark.get(path)
            if base is not None:
                count -= base[0]
                total_s -= base[1]
            if count > 0:
                delta[path] = (count, total_s, max_s)
        return delta

    def as_dict(self, digits: int = 6) -> Dict[str, Dict[str, Any]]:
        """JSON-ready form, paths sorted, seconds rounded."""
        return profile_dict(self.snapshot(), digits=digits)


def profile_dict(
    snapshot: ProfileSnapshot, digits: int = 6
) -> Dict[str, Dict[str, Any]]:
    """Render a snapshot as the JSON shape bench reports embed."""
    return {
        path: {
            "count": count,
            "total_s": round(total_s, digits),
            "max_s": round(max_s, digits),
        }
        for path, (count, total_s, max_s) in sorted(snapshot.items())
    }


class NullSpan:
    """The no-op context manager returned when no observer is active."""

    __slots__ = ()

    def __enter__(self) -> "NullSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None


#: Shared singleton — entering it costs two empty method calls.
NULL_SPAN = NullSpan()


class SpanHandle:
    """One live span: pushes its path on enter, records on exit."""

    __slots__ = ("_profile", "_stack", "_name", "_path", "_start")

    def __init__(
        self, profile: SpanProfile, stack: List[str], name: str
    ) -> None:
        self._profile = profile
        self._stack = stack
        self._name = name
        self._path = ""
        self._start = 0.0

    def __enter__(self) -> "SpanHandle":
        parent = self._stack[-1] if self._stack else None
        self._path = f"{parent}/{self._name}" if parent else self._name
        self._stack.append(self._path)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        duration = time.perf_counter() - self._start
        self._stack.pop()
        self._profile.record(self._path, duration)


def now() -> float:
    """The monotonic clock spans use (exposed for executor timing)."""
    return time.perf_counter()
