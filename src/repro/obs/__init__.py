"""repro.obs — run-scoped observability: events, spans, instruments.

Three pillars, one activation point:

* a **structured event log** (:mod:`repro.obs.events`) — append-only
  JSONL stamped with a logical clock, deterministic and diffable;
* **hierarchical timing spans** (:mod:`repro.obs.spans`) — perf_counter
  aggregates per span path, explicitly nondeterministic;
* an **instrumentation registry** (:mod:`repro.obs.registry`) —
  counters and gauges absorbing the runtime's bit meters and every
  kernel cache's hit/miss split.

The default is the **null observer**: until :func:`~repro.obs.core
.activate` (or the :func:`~repro.obs.core.observing` context manager)
installs an :class:`~repro.obs.core.Observer`, every instrumented
path reduces to one ``is None`` check and produces byte-identical
results to uninstrumented code.  See ``docs/observability.md``.
"""

from repro.obs.core import (
    Observer,
    activate,
    active,
    deactivate,
    observing,
    span,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    EventLog,
    read_jsonl,
    validate_jsonl,
    validate_records,
)
from repro.obs.registry import InstrumentRegistry
from repro.obs.spans import NULL_SPAN, SpanProfile, profile_dict

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "EventLog",
    "InstrumentRegistry",
    "Observer",
    "SpanProfile",
    "activate",
    "active",
    "deactivate",
    "observing",
    "profile_dict",
    "read_jsonl",
    "span",
    "validate_jsonl",
    "validate_records",
]
