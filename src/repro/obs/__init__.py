"""repro.obs — run-scoped observability: events, spans, instruments.

Three pillars, one activation point:

* a **structured event log** (:mod:`repro.obs.events`) — append-only
  JSONL stamped with a logical clock, deterministic and diffable;
* **hierarchical timing spans** (:mod:`repro.obs.spans`) — perf_counter
  aggregates per span path, explicitly nondeterministic;
* an **instrumentation registry** (:mod:`repro.obs.registry`) —
  counters and gauges absorbing the runtime's bit meters and every
  kernel cache's hit/miss split.

The default is the **null observer**: until :func:`~repro.obs.core
.activate` (or the :func:`~repro.obs.core.observing` context manager)
installs an :class:`~repro.obs.core.Observer`, every instrumented
path reduces to one ``is None`` check and produces byte-identical
results to uninstrumented code.  See ``docs/observability.md``.
"""

from repro.obs.core import (
    Observer,
    activate,
    active,
    deactivate,
    observing,
    span,
)
from repro.obs.events import (
    SCHEMA_VERSION,
    EventLog,
    log_paths,
    read_jsonl,
    read_jsonl_lenient,
    read_log,
    validate_jsonl,
    validate_records,
)
from repro.obs.export import (
    chrome_trace,
    speedscope_profile,
    validate_chrome_trace,
)
from repro.obs.registry import InstrumentRegistry
from repro.obs.rollup import load_status, render_status, status_from_records
from repro.obs.spans import NULL_SPAN, SpanProfile, profile_dict
from repro.obs.trace import CausalDag, CausalEdge, build_dags, check_closedness

__all__ = [
    "NULL_SPAN",
    "SCHEMA_VERSION",
    "CausalDag",
    "CausalEdge",
    "EventLog",
    "InstrumentRegistry",
    "Observer",
    "SpanProfile",
    "activate",
    "active",
    "build_dags",
    "check_closedness",
    "chrome_trace",
    "deactivate",
    "load_status",
    "log_paths",
    "observing",
    "profile_dict",
    "read_jsonl",
    "read_jsonl_lenient",
    "read_log",
    "render_status",
    "span",
    "speedscope_profile",
    "status_from_records",
    "validate_chrome_trace",
    "validate_jsonl",
    "validate_records",
]
