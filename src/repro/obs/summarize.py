"""Offline queries over recorded event logs: summarize and profile.

These are the analysis halves of ``repro events summarize`` and
``repro events profile``.  Both consume a list of schema-v1 records
(see :mod:`repro.obs.events`) and build a JSON-ready report; the
``render_*`` functions turn a report into the aligned-text form the
CLI prints by default.

The summary is built from the **deterministic** section of the log —
run/round/cell lifecycle and the counters dump — so summarizing the
same log twice, or logs recorded by identical runs in fresh
processes, yields identical output.  The profile view reads the
nondeterministic section (span aggregates, worker timings) and is as
reproducible as wall time is.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional

from repro.obs.registry import InstrumentRegistry


def summarize_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The deterministic summary of one event log."""
    runs = 0
    decisions = 0
    corruptions = 0
    sends = 0
    cells_total = 0
    cells_held = 0
    cells_falsified = 0
    per_round: Dict[int, Dict[str, int]] = {}
    counters: Dict[str, int] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "run_start":
            runs += 1
        elif kind == "decide":
            decisions += 1
        elif kind == "corrupt":
            corruptions += 1
        elif kind == "send":
            sends += 1
        elif kind == "round_end":
            row = per_round.setdefault(
                record["round"],
                {"rounds": 0, "messages": 0, "non_null": 0, "bits": 0},
            )
            row["rounds"] += 1
            row["messages"] += record["messages"]
            row["non_null"] += record["non_null"]
            row["bits"] += record["bits"]
        elif kind == "cell_end":
            cells_total += 1
            if record["holds"] is True:
                cells_held += 1
            elif record["holds"] is False:
                cells_falsified += 1
        elif kind == "counters":
            counters = dict(record["counters"])
    registry = InstrumentRegistry()
    registry.absorb(counters)
    hit_rates = {
        cache: {"rate": round(rate, 4), "hits": hits, "misses": misses}
        for cache, (rate, hits, misses) in registry.hit_rates().items()
    }
    return {
        "records": len(records),
        "runs": runs,
        "decisions": decisions,
        "sends": sends,
        "corruptions": corruptions,
        "cells": {
            "total": cells_total,
            "held": cells_held,
            "falsified": cells_falsified,
        },
        "per_round": {
            str(round_number): per_round[round_number]
            for round_number in sorted(per_round)
        },
        "counters": counters,
        "hit_rates": hit_rates,
    }


def profile_records(records: List[Dict[str, Any]]) -> Dict[str, Any]:
    """The span/worker rollup of one event log.

    Multiple ``profile`` records (one per observer close) are summed
    span-wise; ``workers`` records are listed as recorded.
    """
    spans: Dict[str, Dict[str, Any]] = {}
    gauges: Dict[str, float] = {}
    workers: List[Dict[str, Any]] = []
    for record in records:
        kind = record.get("kind")
        if kind == "profile":
            for path, stats in record["spans"].items():
                merged = spans.setdefault(
                    path, {"count": 0, "total_s": 0.0, "max_s": 0.0}
                )
                merged["count"] += stats["count"]
                merged["total_s"] = round(
                    merged["total_s"] + stats["total_s"], 6
                )
                merged["max_s"] = max(merged["max_s"], stats["max_s"])
            gauges.update(record["gauges"])
        elif kind == "workers":
            workers.append(
                {
                    "workers": record["workers"],
                    "wall_s": record["wall_s"],
                    "idle_s": record["idle_s"],
                }
            )
    return {
        "spans": {path: spans[path] for path in sorted(spans)},
        "gauges": {name: gauges[name] for name in sorted(gauges)},
        "workers": workers,
    }


def _table(headers: List[str], rows: List[List[str]]) -> List[str]:
    widths = [len(header) for header in headers]
    for row in rows:
        for column, cell in enumerate(row):
            widths[column] = max(widths[column], len(cell))
    lines = [
        "  ".join(header.ljust(widths[column])
                  for column, header in enumerate(headers)).rstrip(),
        "  ".join("-" * widths[column] for column in range(len(headers))),
    ]
    for row in rows:
        lines.append(
            "  ".join(cell.ljust(widths[column])
                      for column, cell in enumerate(row)).rstrip()
        )
    return lines


def render_summary(summary: Dict[str, Any]) -> str:
    """Aligned-text form of :func:`summarize_records`."""
    lines = [
        f"records: {summary['records']}  runs: {summary['runs']}  "
        f"decisions: {summary['decisions']}  sends: {summary['sends']}  "
        f"corruptions: {summary['corruptions']}",
    ]
    cells = summary["cells"]
    if cells["total"]:
        lines.append(
            f"cells: {cells['total']}  held: {cells['held']}  "
            f"falsified: {cells['falsified']}"
        )
    if summary["per_round"]:
        lines.append("")
        lines.append("per-round traffic (summed across runs):")
        rows = [
            [
                round_number,
                str(row["messages"]),
                str(row["non_null"]),
                str(row["bits"]),
            ]
            for round_number, row in summary["per_round"].items()
        ]
        lines.extend(
            _table(["round", "messages", "non-null", "bits"], rows)
        )
    if summary["hit_rates"]:
        lines.append("")
        lines.append("cache hit rates:")
        rows = [
            [
                cache,
                f"{stats['rate']:.2%}",
                str(stats["hits"]),
                str(stats["misses"]),
            ]
            for cache, stats in summary["hit_rates"].items()
        ]
        lines.extend(_table(["cache", "rate", "hits", "misses"], rows))
    if summary["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in summary["counters"].items():
            lines.append(f"  {name} = {value}")
    return "\n".join(lines)


def render_profile(profile: Dict[str, Any]) -> str:
    """Aligned-text form of :func:`profile_records`."""
    lines: List[str] = []
    if profile["spans"]:
        lines.append("span profile (nondeterministic wall time):")
        ordered = sorted(
            profile["spans"].items(),
            key=lambda item: item[1]["total_s"],
            reverse=True,
        )
        rows = [
            [
                path,
                str(stats["count"]),
                f"{stats['total_s']:.6f}",
                f"{stats['max_s']:.6f}",
            ]
            for path, stats in ordered
        ]
        lines.extend(_table(["span", "count", "total_s", "max_s"], rows))
    else:
        lines.append("no span profile recorded")
    if profile["gauges"]:
        lines.append("")
        lines.append("gauges:")
        for name, value in profile["gauges"].items():
            lines.append(f"  {name} = {value}")
    for entry in profile["workers"]:
        lines.append("")
        lines.append(
            f"pool: wall {entry['wall_s']:.3f}s, "
            f"idle {entry['idle_s']:.3f}s across workers"
        )
        for worker in entry["workers"]:
            lines.append(
                f"  worker cells={worker['cells']} "
                f"busy_s={worker['busy_s']}"
            )
    return "\n".join(lines)


def top_regressions(
    current: Dict[str, Any],
    baseline: Dict[str, Any],
    limit: int = 3,
) -> List[Dict[str, Any]]:
    """The ``limit`` largest span slowdowns between two profiles.

    Both arguments are bench-report ``profile`` sections
    (``path -> {count, total_s, max_s}``).  A path only counts as a
    regression when it exists in both and its total grew; results are
    ordered by absolute growth.  Informational only — wall time is
    nondeterministic, so this never gates.
    """
    regressions: List[Dict[str, Any]] = []
    for path, stats in current.items():
        base = baseline.get(path)
        if base is None:
            continue
        delta = stats["total_s"] - base["total_s"]
        if delta <= 0:
            continue
        ratio: Optional[float] = (
            stats["total_s"] / base["total_s"] if base["total_s"] else None
        )
        regressions.append(
            {
                "span": path,
                "delta_s": round(delta, 6),
                "current_s": stats["total_s"],
                "baseline_s": base["total_s"],
                "ratio": round(ratio, 3) if ratio is not None else None,
            }
        )
    regressions.sort(key=lambda entry: entry["delta_s"], reverse=True)
    return regressions[:limit]


__all__ = [
    "profile_records",
    "render_profile",
    "render_summary",
    "summarize_records",
    "top_regressions",
]
