"""The structured event log: schema v1, sinks, and validation.

Every record is one JSON object per line (JSONL) with a common
envelope::

    {"v": 1, "kind": "...", "run": "r1" | null, "round": 3, "step": 17, ...}

The clock is **logical**: ``run`` is the observer-scoped run id,
``round`` the protocol round the observer was last told about, and
``step`` a monotonically increasing per-log sequence number.  No
deterministic record carries wall time, so two logs of the same
workload in fresh processes are byte-identical and diffable.  Records
that *do* derive from the wall clock (span profiles, worker timings)
carry ``"nondeterministic": true`` and are excluded from that
contract.

The schema is deliberately closed: :func:`validate_record` rejects
unknown kinds and missing or mistyped required fields, so CI can gate
recorded artifacts (see the bench-smoke job) and downstream tooling
can rely on the documented shape in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import pathlib
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

#: Bump on incompatible record-shape changes.
SCHEMA_VERSION = 1

#: Fields present on every record.  ``run`` may be null (events emitted
#: outside any run — sweep chunks, checkpoints, the counters dump).
ENVELOPE_FIELDS: Dict[str, Tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "round": (int,),
    "step": (int,),
}

#: Required payload fields per event kind.  A value is a tuple of
#: accepted types; ``type(None)`` marks a nullable field.
EVENT_FIELDS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # execution lifecycle
    "run_start": {
        "n": (int,),
        "t": (int,),
        "seed": (int,),
        "adversary": (str,),
        "faulty": (list,),
    },
    "run_end": {
        "rounds": (int,),
        "decided": (int,),
        "messages": (int,),
        "non_null": (int,),
        "bits": (int,),
    },
    "round_start": {},
    "round_end": {"messages": (int,), "non_null": (int,), "bits": (int,)},
    # traffic
    "send": {
        "sender": (int,),
        "receiver": (int,),
        "bits": (int,),
        "non_null": (bool,),
    },
    "corrupt": {"sender": (int,), "receiver": (int,), "summary": (str,)},
    # state changes
    "state": {"process": (int,), "summary": (str,)},
    "decide": {
        "process": (int,),
        "value": (str, int, float, bool, type(None)),
    },
    # sweep-cell lifecycle
    "cell_start": {
        "index": (int,),
        "adversary": (str,),
        "seed": (int,),
        "faulty": (list,),
    },
    "cell_end": {"index": (int,), "holds": (bool, type(None))},
    "chunk": {"index": (int,), "cells": (int,)},
    # persistence
    "checkpoint_save": {"path": (str,)},
    "checkpoint_load": {"path": (str,)},
    # registry dump (deterministic counters only)
    "counters": {"counters": (dict,)},
    # nondeterministic section
    "profile": {"spans": (dict,), "gauges": (dict,)},
    "workers": {"workers": (list,), "wall_s": (float, int), "idle_s": (float, int)},
}

#: Kinds whose records must be flagged ``"nondeterministic": true`` —
#: they embed wall-clock measurements.
NONDETERMINISTIC_KINDS = frozenset({"profile", "workers"})


def json_safe(value: Any) -> Any:
    """``value`` if JSON-representable as a scalar, else its ``repr``.

    Event payload fields must stay diffable text; arbitrary protocol
    values (BOTTOM, tuples, payload objects) are rendered, never
    serialized — the full-fidelity path is the trace codec
    (:mod:`repro.obs.codec`), not the event log.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


class EventLog:
    """An append-only JSONL sink, in memory or streamed to a path.

    With a ``path`` the records stream straight to disk (one
    ``json.dumps`` line per record, flushed on :meth:`close`) and are
    not retained; without one they accumulate in :attr:`records` for
    in-process inspection (tests, the summarizer).
    """

    def __init__(self, path: Optional[Union[str, pathlib.Path]] = None):
        self.path = pathlib.Path(path) if path is not None else None
        self.records: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = None
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record (already enveloped by the observer)."""
        if self._handle is not None:
            self._handle.write(
                json.dumps(record, separators=(", ", ": "), sort_keys=False)
                + "\n"
            )
        else:
            self.records.append(record)

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Load every record of a JSONL event log."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: record is not a JSON object"
                )
            records.append(record)
    return records


def validate_record(record: Dict[str, Any]) -> List[str]:
    """Schema-v1 problems with one record (empty list = valid)."""
    problems: List[str] = []
    for field, types in ENVELOPE_FIELDS.items():
        value = record.get(field)
        if not isinstance(value, types) or isinstance(value, bool):
            problems.append(
                f"envelope field {field!r} missing or not {types[0].__name__}"
            )
    if problems:
        return problems
    if record["v"] != SCHEMA_VERSION:
        problems.append(
            f"schema version {record['v']} != {SCHEMA_VERSION}"
        )
    run = record.get("run")
    if run is not None and not isinstance(run, str):
        problems.append("envelope field 'run' must be a string or null")
    kind = record["kind"]
    fields = EVENT_FIELDS.get(kind)
    if fields is None:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    for field, types in fields.items():
        if field not in record:
            problems.append(f"{kind}: missing field {field!r}")
            continue
        value = record[field]
        if isinstance(value, bool) and bool not in types:
            problems.append(f"{kind}: field {field!r} has wrong type bool")
        elif not isinstance(value, types):
            problems.append(
                f"{kind}: field {field!r} has wrong type "
                f"{type(value).__name__}"
            )
    if kind in NONDETERMINISTIC_KINDS:
        if record.get("nondeterministic") is not True:
            problems.append(
                f"{kind}: wall-clock-derived record must carry "
                "'nondeterministic': true"
            )
    elif record.get("nondeterministic"):
        problems.append(
            f"{kind}: deterministic kind wrongly flagged nondeterministic"
        )
    return problems


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Problems across a record sequence, prefixed by record index.

    Also enforces the log-level invariant that ``step`` strictly
    increases — the logical clock never stalls or rewinds.
    """
    problems: List[str] = []
    last_step = -1
    for index, record in enumerate(records):
        for problem in validate_record(record):
            problems.append(f"record {index}: {problem}")
        step = record.get("step")
        if isinstance(step, int) and not isinstance(step, bool):
            if step <= last_step:
                problems.append(
                    f"record {index}: step {step} does not advance the "
                    f"logical clock (previous {last_step})"
                )
            last_step = step
    return problems


def validate_jsonl(path: Union[str, pathlib.Path]) -> List[str]:
    """Validate a JSONL file end to end; returns all problems."""
    try:
        records = read_jsonl(path)
    except (OSError, ValueError) as error:
        return [str(error)]
    return validate_records(records)
