"""The structured event log: schema v1, sinks, and validation.

Every record is one JSON object per line (JSONL) with a common
envelope::

    {"v": 1, "kind": "...", "run": "r1" | null, "round": 3, "step": 17, ...}

The clock is **logical**: ``run`` is the observer-scoped run id,
``round`` the protocol round the observer was last told about, and
``step`` a monotonically increasing per-log sequence number.  No
deterministic record carries wall time, so two logs of the same
workload in fresh processes are byte-identical and diffable.  Records
that *do* derive from the wall clock (span profiles, worker timings)
carry ``"nondeterministic": true`` and are excluded from that
contract.

The schema is deliberately closed: :func:`validate_record` rejects
unknown kinds and missing or mistyped required fields, so CI can gate
recorded artifacts (see the bench-smoke job) and downstream tooling
can rely on the documented shape in ``docs/observability.md``.
"""

from __future__ import annotations

import json
import pathlib
import re
from typing import Any, Dict, IO, Iterable, List, Optional, Tuple, Union

#: Bump on incompatible record-shape changes.
SCHEMA_VERSION = 1

#: Fields present on every record.  ``run`` may be null (events emitted
#: outside any run — sweep chunks, checkpoints, the counters dump).
ENVELOPE_FIELDS: Dict[str, Tuple[type, ...]] = {
    "v": (int,),
    "kind": (str,),
    "round": (int,),
    "step": (int,),
}

#: Required payload fields per event kind.  A value is a tuple of
#: accepted types; ``type(None)`` marks a nullable field.
EVENT_FIELDS: Dict[str, Dict[str, Tuple[type, ...]]] = {
    # execution lifecycle
    "run_start": {
        "n": (int,),
        "t": (int,),
        "seed": (int,),
        "adversary": (str,),
        "faulty": (list,),
    },
    "run_end": {
        "rounds": (int,),
        "decided": (int,),
        "messages": (int,),
        "non_null": (int,),
        "bits": (int,),
    },
    "round_start": {},
    "round_end": {"messages": (int,), "non_null": (int,), "bits": (int,)},
    # traffic
    "send": {
        "sender": (int,),
        "receiver": (int,),
        "bits": (int,),
        "non_null": (bool,),
    },
    "corrupt": {"sender": (int,), "receiver": (int,), "summary": (str,)},
    # causal trace edges (emitted only when ``Observer(trace=True)``):
    # one record per non-bottom payload actually delivered to a
    # correct receiver, faulty senders included — the raw material of
    # the post-hoc causal DAG (:mod:`repro.obs.trace`)
    "deliver": {
        "sender": (int,),
        "receiver": (int,),
        "bits": (int,),
        "non_null": (bool,),
        "faulty": (bool,),
    },
    # state changes
    "state": {"process": (int,), "summary": (str,)},
    "decide": {
        "process": (int,),
        "value": (str, int, float, bool, type(None)),
    },
    # sweep-cell lifecycle
    "cell_start": {
        "index": (int,),
        "adversary": (str,),
        "seed": (int,),
        "faulty": (list,),
    },
    "cell_end": {"index": (int,), "holds": (bool, type(None))},
    "chunk": {"index": (int,), "cells": (int,)},
    # cross-worker telemetry rollups: compact counter deltas streamed
    # mid-run so ``repro status`` can reconstruct progress and cache
    # hit rates from a half-finished log.  ``scope`` names the unit of
    # work ("plan" announces a pool's cell total, "chunk" follows each
    # returned pool chunk, "protocol" each fuzz protocol, "suite" each
    # bench suite); ``counters`` is the registry delta since the
    # previous rollup.
    "rollup": {
        "scope": (str,),
        "index": (int,),
        "cells": (int,),
        "counters": (dict,),
    },
    # fuzz campaign summary (one per run_campaign under an observer)
    "fuzz_campaign": {
        "seed": (int,),
        "executions": (int,),
        "failures": (int,),
        "shrunk": (int,),
    },
    # persistence
    "checkpoint_save": {"path": (str,)},
    "checkpoint_load": {"path": (str,)},
    # registry dump (deterministic counters only)
    "counters": {"counters": (dict,)},
    # nondeterministic section
    "profile": {"spans": (dict,), "gauges": (dict,)},
    "workers": {"workers": (list,), "wall_s": (float, int), "idle_s": (float, int)},
    "worker_sample": {
        "chunk": (int,),
        "worker": (int,),
        "cells": (int,),
        "busy_s": (float, int),
    },
}

#: Kinds whose records must be flagged ``"nondeterministic": true`` —
#: they embed wall-clock measurements.
NONDETERMINISTIC_KINDS = frozenset({"profile", "workers", "worker_sample"})


def json_safe(value: Any) -> Any:
    """``value`` if JSON-representable as a scalar, else its ``repr``.

    Event payload fields must stay diffable text; arbitrary protocol
    values (BOTTOM, tuples, payload objects) are rendered, never
    serialized — the full-fidelity path is the trace codec
    (:mod:`repro.obs.codec`), not the event log.
    """
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    return repr(value)


#: Rollover part naming: ``<base>.jsonl.part-N`` (N starts at 1; the
#: capped base file is part 0 of the sequence).
_PART_RE = re.compile(r"^(?P<base>.+\.jsonl)\.part-(?P<n>\d+)$")


class EventLog:
    """An append-only JSONL sink, in memory or streamed to a path.

    With a ``path`` the records stream straight to disk (one
    ``json.dumps`` line per record, flushed on :meth:`close`) and are
    not retained; without one they accumulate in :attr:`records` for
    in-process inspection (tests, the summarizer).

    ``cap_bytes`` bounds each on-disk file: once a write would push the
    current file past the cap, the log rolls over to
    ``<path>.part-1``, ``<path>.part-2``, … so million-event campaigns
    never produce a single unbounded JSONL.  A record is never split
    across parts, so each part remains independently valid JSONL
    (``step`` continuity is a whole-sequence property; use
    :func:`read_log` to reassemble).
    """

    def __init__(
        self,
        path: Optional[Union[str, pathlib.Path]] = None,
        cap_bytes: Optional[int] = None,
    ):
        self.path = pathlib.Path(path) if path is not None else None
        self.cap_bytes = cap_bytes if path is not None else None
        self.records: List[Dict[str, Any]] = []
        self._handle: Optional[IO[str]] = None
        self._part = 0
        self._part_bytes = 0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)
            self._handle = open(self.path, "w")

    def write(self, record: Dict[str, Any]) -> None:
        """Append one record (already enveloped by the observer)."""
        if self._handle is not None:
            line = (
                json.dumps(record, separators=(", ", ": "), sort_keys=False)
                + "\n"
            )
            if (
                self.cap_bytes is not None
                and self._part_bytes > 0
                and self._part_bytes + len(line) > self.cap_bytes
            ):
                self._rollover()
            self._handle.write(line)
            self._part_bytes += len(line)
        else:
            self.records.append(record)

    def _rollover(self) -> None:
        assert self._handle is not None and self.path is not None
        self._handle.close()
        self._part += 1
        part_path = self.path.with_name(
            f"{self.path.name}.part-{self._part}"
        )
        self._handle = open(part_path, "w")
        self._part_bytes = 0

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None


def read_jsonl(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Load every record of a JSONL event log."""
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for line_number, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError as error:
                raise ValueError(
                    f"{path}:{line_number}: not valid JSON: {error}"
                ) from None
            if not isinstance(record, dict):
                raise ValueError(
                    f"{path}:{line_number}: record is not a JSON object"
                )
            records.append(record)
    return records


def read_jsonl_lenient(
    path: Union[str, pathlib.Path],
) -> Tuple[List[Dict[str, Any]], int]:
    """Best-effort load for in-flight or interrupted logs.

    Unlike :func:`read_jsonl`, undecodable or non-object lines (a torn
    final line of a killed writer, typically) are skipped rather than
    raised; the skip count is returned alongside the good records so
    ``repro status`` can report how much it ignored.
    """
    records: List[Dict[str, Any]] = []
    skipped = 0
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                skipped += 1
                continue
            if not isinstance(record, dict):
                skipped += 1
                continue
            records.append(record)
    return records, skipped


def _part_index(path: pathlib.Path) -> Tuple[str, int]:
    """Sort key placing ``x.jsonl`` before its ``x.jsonl.part-N``."""
    match = _PART_RE.match(path.name)
    if match is not None:
        return match.group("base"), int(match.group("n"))
    return path.name, 0


def log_paths(path: Union[str, pathlib.Path]) -> List[pathlib.Path]:
    """The ordered file sequence making up one (possibly rotated) log.

    - a directory: every ``*.jsonl`` base log plus its rollover parts,
      grouped by base name and ordered by part number (trace sidecars,
      ``*.trace.jsonl``, carry a different schema and are excluded);
    - a base ``x.jsonl`` file: the file followed by any
      ``x.jsonl.part-N`` siblings;
    - an explicit ``.part-N`` file: just that part.
    """
    root = pathlib.Path(path)
    if root.is_dir():
        candidates = [
            child
            for child in root.iterdir()
            if child.is_file()
            and (child.suffix == ".jsonl" or _PART_RE.match(child.name))
            and not _part_index(child)[0].endswith(".trace.jsonl")
        ]
        return sorted(candidates, key=_part_index)
    if _PART_RE.match(root.name):
        return [root]
    parts = [
        sibling
        for sibling in root.parent.glob(f"{root.name}.part-*")
        if _PART_RE.match(sibling.name)
    ]
    return [root] + sorted(parts, key=_part_index)


def read_log(path: Union[str, pathlib.Path]) -> List[Dict[str, Any]]:
    """Load a log that may have been rotated into ``.part-N`` files.

    ``path`` may be a single JSONL file (parts are discovered as
    siblings), an explicit part, or a directory of logs; records come
    back in logical-clock order across the whole sequence.
    """
    records: List[Dict[str, Any]] = []
    for part in log_paths(path):
        records.extend(read_jsonl(part))
    return records


def validate_record(record: Dict[str, Any]) -> List[str]:
    """Schema-v1 problems with one record (empty list = valid)."""
    problems: List[str] = []
    for field, types in ENVELOPE_FIELDS.items():
        value = record.get(field)
        if not isinstance(value, types) or isinstance(value, bool):
            problems.append(
                f"envelope field {field!r} missing or not {types[0].__name__}"
            )
    if problems:
        return problems
    if record["v"] != SCHEMA_VERSION:
        problems.append(
            f"schema version {record['v']} != {SCHEMA_VERSION}"
        )
    run = record.get("run")
    if run is not None and not isinstance(run, str):
        problems.append("envelope field 'run' must be a string or null")
    kind = record["kind"]
    fields = EVENT_FIELDS.get(kind)
    if fields is None:
        problems.append(f"unknown event kind {kind!r}")
        return problems
    for field, types in fields.items():
        if field not in record:
            problems.append(f"{kind}: missing field {field!r}")
            continue
        value = record[field]
        if isinstance(value, bool) and bool not in types:
            problems.append(f"{kind}: field {field!r} has wrong type bool")
        elif not isinstance(value, types):
            problems.append(
                f"{kind}: field {field!r} has wrong type "
                f"{type(value).__name__}"
            )
    if kind in NONDETERMINISTIC_KINDS:
        if record.get("nondeterministic") is not True:
            problems.append(
                f"{kind}: wall-clock-derived record must carry "
                "'nondeterministic': true"
            )
    elif record.get("nondeterministic"):
        problems.append(
            f"{kind}: deterministic kind wrongly flagged nondeterministic"
        )
    return problems


def validate_records(records: Iterable[Dict[str, Any]]) -> List[str]:
    """Problems across a record sequence, prefixed by record index.

    Also enforces the log-level invariant that ``step`` strictly
    increases — the logical clock never stalls or rewinds.
    """
    problems: List[str] = []
    last_step = -1
    for index, record in enumerate(records):
        for problem in validate_record(record):
            problems.append(f"record {index}: {problem}")
        step = record.get("step")
        if isinstance(step, int) and not isinstance(step, bool):
            if step <= last_step:
                problems.append(
                    f"record {index}: step {step} does not advance the "
                    f"logical clock (previous {last_step})"
                )
            last_step = step
    return problems


def validate_jsonl(path: Union[str, pathlib.Path]) -> List[str]:
    """Validate a JSONL file end to end; returns all problems."""
    try:
        records = read_jsonl(path)
    except (OSError, ValueError) as error:
        return [str(error)]
    return validate_records(records)
