"""The observer: one object tying events, spans and counters together.

Instrumented code across the runtime, the arrays kernel and the
executors reads one module global, :data:`ACTIVE`, and does nothing
when it is ``None`` — the **null observer** default.  That check is
the entire cost of instrumentation on the default path, which is what
keeps un-observed sweeps and benches byte-identical to the
pre-instrumentation code (pinned by ``tests/obs/``).

An :class:`Observer` is run-scoped state: a logical clock
(run id / round / step) stamped onto every event, an optional
:class:`~repro.obs.events.EventLog` sink, a
:class:`~repro.obs.registry.InstrumentRegistry` of counters and
gauges, and a :class:`~repro.obs.spans.SpanProfile` of wall-time
spans.  Activate one for a region with::

    with observing(Observer(events=EventLog(path))) as obs:
        run_protocol(...)

Pool workers must never record into a fork-inherited observer (their
events would be lost or interleaved), so the sweep executor clears
:data:`ACTIVE` first thing in each forked worker — pooled runs record
executor-level instrumentation only.
"""

from __future__ import annotations

import contextlib
from typing import Any, Dict, Iterator, List, Optional, Union

from repro.obs.events import EventLog, json_safe
from repro.obs.registry import InstrumentRegistry
from repro.obs.spans import (
    NULL_SPAN,
    NullSpan,
    ProfileSnapshot,
    SpanHandle,
    SpanProfile,
)

# The activation entry points necessarily publish through a module
# global: hot paths (one check per delivered message / interned node)
# cannot afford a registry lookup, and the observer must be visible to
# code that never receives it as an argument (the arrays kernel, the
# expansion caches).  Observation never feeds back into protocol
# behaviour, so the shared state is invisible to every replay theorem.
PURITY_EXEMPT = {
    "activate": (
        "publishes the process-wide observer through the ACTIVE module "
        "global; observation is write-only telemetry that protocol code "
        "never reads back, so the shared state cannot alter an outcome"
    ),
    "deactivate": (
        "clears the ACTIVE module global (the inverse of activate); "
        "exists so forked pool workers and finished CLI runs can drop "
        "the inherited observer"
    ),
}


class Observer:
    """Collects events, counters and spans for one observed region.

    Parameters
    ----------
    events:
        Event sink; ``None`` records no events (counters and spans
        still work).
    counters:
        Whether :meth:`count` / :meth:`gauge` record into the
        registry.
    spans:
        Whether :meth:`span` times regions (``False`` returns the
        no-op span).
    trace:
        Whether the runtime emits causal ``deliver`` edges (the raw
        material of :mod:`repro.obs.trace`).  Requires an event sink;
        off by default because one edge per delivered message is the
        chattiest thing the log can record.
    """

    def __init__(
        self,
        events: Optional[EventLog] = None,
        counters: bool = True,
        spans: bool = True,
        trace: bool = False,
    ) -> None:
        self.events = events
        self.events_on = events is not None
        self.counters_on = counters
        self.spans_on = spans
        self.trace_on = trace and self.events_on
        self._rollup_mark: Dict[str, int] = {}
        self.registry = InstrumentRegistry()
        self.profile = SpanProfile()
        self._span_stack: List[str] = []
        self._run: Optional[str] = None
        self._run_seq = 0
        self._round = 0
        self._step = 0
        self._closed = False

    # -- event log ---------------------------------------------------------

    def emit(self, kind: str, **fields: Any) -> None:
        """Append one deterministic event, stamped with the clock."""
        if not self.events_on:
            return
        self._step += 1
        record: Dict[str, Any] = {
            "v": 1,
            "kind": kind,
            "run": self._run,
            "round": self._round,
            "step": self._step,
        }
        record.update(fields)
        assert self.events is not None
        self.events.write(record)

    def emit_nondet(self, kind: str, **fields: Any) -> None:
        """Append one wall-clock-derived event, flagged as such."""
        self.emit(kind, nondeterministic=True, **fields)

    def emit_rollup(self, scope: str, index: int, cells: int) -> None:
        """Append one telemetry rollup: the counter delta since the
        previous rollup.

        Rollups let ``repro status`` reconstruct progress and cache
        hit rates from a half-finished log: each record carries only
        what changed since the last one, so summing deltas across an
        interrupted log reproduces the registry state at the moment of
        the kill.  Deterministic — counters hold logical quantities
        only, and the delta baseline is per-observer state.
        """
        if not self.events_on:
            return
        counters = self.registry.counters()
        delta = {
            name: value - self._rollup_mark.get(name, 0)
            for name, value in counters.items()
            if value != self._rollup_mark.get(name, 0)
        }
        self._rollup_mark = counters
        self.emit("rollup", scope=scope, index=index, cells=cells,
                  counters=delta)

    # -- logical clock -----------------------------------------------------

    def begin_run(
        self,
        n: int,
        t: int,
        seed: int,
        adversary: str,
        faulty: List[int],
    ) -> str:
        """Open a run scope; returns its id (``r1``, ``r2``, ...)."""
        self._run_seq += 1
        self._run = f"r{self._run_seq}"
        self._round = 0
        self.emit(
            "run_start", n=n, t=t, seed=seed, adversary=adversary,
            faulty=list(faulty),
        )
        return self._run

    def end_run(
        self,
        rounds: int,
        decided: int,
        messages: int,
        non_null: int,
        bits: int,
    ) -> None:
        """Close the current run scope and absorb its meters."""
        self.emit(
            "run_end", rounds=rounds, decided=decided, messages=messages,
            non_null=non_null, bits=bits,
        )
        if self.counters_on:
            self.registry.count("net.messages", messages)
            self.registry.count("net.non_null_messages", non_null)
            self.registry.count("net.bits", bits)
            self.registry.count("runs", 1)
        self._run = None
        self._round = 0

    def set_round(self, round_number: int) -> None:
        """Advance the logical clock to a protocol round."""
        self._round = round_number

    # -- registry ----------------------------------------------------------

    def count(self, name: str, delta: int = 1) -> None:
        if self.counters_on:
            self.registry.count(name, delta)

    def gauge(self, name: str, value: float) -> None:
        if self.counters_on:
            self.registry.set_gauge(name, value)

    # -- spans -------------------------------------------------------------

    def span(self, name: str) -> Union[SpanHandle, NullSpan]:
        """A context manager timing ``name`` under the open span path."""
        if not self.spans_on:
            return NULL_SPAN
        return SpanHandle(self.profile, self._span_stack, name)

    def profile_snapshot(self) -> ProfileSnapshot:
        return self.profile.snapshot()

    def profile_since(self, mark: ProfileSnapshot) -> ProfileSnapshot:
        return self.profile.since(mark)

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Dump counters and the profile, then close the sink.

        The counters record is deterministic (it holds only logical
        quantities); the profile record embeds wall time and is
        flagged nondeterministic.  Idempotent.
        """
        if self._closed:
            return
        self._closed = True
        if self.events_on:
            counters = self.registry.counters()
            if counters:
                self.emit("counters", counters=counters)
            profile = self.profile.as_dict()
            gauges = self.registry.gauges()
            if profile or gauges:
                self.emit_nondet(
                    "profile",
                    spans=profile,
                    gauges={name: round(value, 6)
                            for name, value in gauges.items()},
                )
        if self.events is not None:
            self.events.close()


#: The process-wide active observer; ``None`` is the null observer.
#: Hot paths read this attribute directly and skip all work when it is
#: ``None`` — never bind it at import time.
ACTIVE: Optional[Observer] = None


def active() -> Optional[Observer]:
    """The currently active observer, if any."""
    return ACTIVE


def activate(observer: Observer) -> None:
    """Make ``observer`` the process-wide active observer."""
    global ACTIVE
    ACTIVE = observer


def deactivate() -> None:
    """Return to the null observer."""
    global ACTIVE
    ACTIVE = None


@contextlib.contextmanager
def observing(observer: Observer, close: bool = True) -> Iterator[Observer]:
    """Activate ``observer`` for a region, restoring the previous one.

    ``close`` also finalizes the observer (counter/profile dump, sink
    close) on exit — the common CLI shape.  Pass ``False`` to keep it
    open for inspection or reuse.
    """
    previous = ACTIVE
    activate(observer)
    try:
        yield observer
    finally:
        if previous is None:
            deactivate()
        else:
            activate(previous)
        if close:
            observer.close()


def span(name: str) -> Union[SpanHandle, NullSpan]:
    """A span on the active observer, or the no-op span when null."""
    observer = ACTIVE
    if observer is None:
        return NULL_SPAN
    return observer.span(name)


__all__ = [
    "ACTIVE",
    "Observer",
    "activate",
    "active",
    "deactivate",
    "json_safe",
    "observing",
    "span",
]
