"""Tagged-JSON codec for protocol values: full-fidelity round-trips.

The event log (:mod:`repro.obs.events`) renders arbitrary values as
text because events only need to be diffable.  Trace persistence
(:meth:`~repro.runtime.trace.ExecutionTrace.to_jsonl`) needs more: a
reloaded trace must compare equal to the recorded one so the
simulation checker can re-verify it offline.  This codec provides
that round-trip for every value the protocols put on the wire or into
a snapshot:

==============================  =======================================
value                           encoding
==============================  =======================================
``None`` / bool / int / str     as-is (JSON scalars)
float                           ``{"f": repr}`` (repr round-trips)
tuple (incl. InternedArray)     ``{"t": [items...]}``
list                            ``{"l": [items...]}``
dict                            ``{"d": [[k, v], ...]}``
frozenset / set                 ``{"fs"|"s": [items...]}`` (sorted)
BOTTOM                          ``{"$": "bottom"}``
NULL_MESSAGE                    ``{"$": "null-message"}``
CRASHED                         ``{"$": "crashed"}``
CompactPayload                  ``{"$": "compact-payload", ...}``
==============================  =======================================

Interned arrays decode as plain tuples — :class:`InternedArray`
pickles the same way, and both the protocols and the trace queries
compare structurally, so equality is preserved.  Set members are
ordered by their encoded JSON form, making the output canonical.

Singleton and payload types live in protocol packages that import
widely; they are imported lazily here to keep :mod:`repro.obs` free
of import cycles.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List


def encode_value(value: Any) -> Any:
    """Encode one protocol value as tagged JSON."""
    if value is None or isinstance(value, (bool, int, str)):
        return value
    if isinstance(value, float):
        return {"f": repr(value)}
    if isinstance(value, tuple):
        return {"t": [encode_value(item) for item in value]}
    if isinstance(value, list):
        return {"l": [encode_value(item) for item in value]}
    if isinstance(value, dict):
        return {
            "d": [
                [encode_value(key), encode_value(item)]
                for key, item in value.items()
            ]
        }
    if isinstance(value, (frozenset, set)):
        members = sorted(
            (encode_value(item) for item in value),
            key=lambda encoded: json.dumps(encoded, sort_keys=True),
        )
        return {"fs" if isinstance(value, frozenset) else "s": members}
    tag = _singleton_tag(value)
    if tag is not None:
        return {"$": tag}
    from repro.compact.payload import CompactPayload

    if isinstance(value, CompactPayload):
        return {
            "$": "compact-payload",
            "main": encode_value(value.main),
            "votes": encode_value(value.votes),
        }
    raise TypeError(
        f"cannot encode {type(value).__name__} value {value!r} — "
        "extend repro.obs.codec if the protocols grow a new wire type"
    )


def decode_value(encoded: Any) -> Any:
    """Invert :func:`encode_value`."""
    if encoded is None or isinstance(encoded, (bool, int, str)):
        return encoded
    if not isinstance(encoded, dict) or len(encoded) < 1:
        raise ValueError(f"malformed encoded value: {encoded!r}")
    if "f" in encoded:
        return float(encoded["f"])
    if "t" in encoded:
        return tuple(decode_value(item) for item in encoded["t"])
    if "l" in encoded:
        return [decode_value(item) for item in encoded["l"]]
    if "d" in encoded:
        return {
            decode_value(key): decode_value(item)
            for key, item in encoded["d"]
        }
    if "fs" in encoded:
        return frozenset(decode_value(item) for item in encoded["fs"])
    if "s" in encoded:
        return {decode_value(item) for item in encoded["s"]}
    if "$" in encoded:
        return _decode_tagged(encoded)
    raise ValueError(f"malformed encoded value: {encoded!r}")


def _singleton_tag(value: Any) -> Any:
    from repro.avalanche.coding import NULL_MESSAGE
    from repro.compact.crash_variant import CRASHED
    from repro.types import BOTTOM

    if value is BOTTOM:
        return "bottom"
    if value is NULL_MESSAGE:
        return "null-message"
    if value is CRASHED:
        return "crashed"
    return None


def _decode_tagged(encoded: Dict[str, Any]) -> Any:
    tag = encoded["$"]
    if tag == "bottom":
        from repro.types import BOTTOM

        return BOTTOM
    if tag == "null-message":
        from repro.avalanche.coding import NULL_MESSAGE

        return NULL_MESSAGE
    if tag == "crashed":
        from repro.compact.crash_variant import CRASHED

        return CRASHED
    if tag == "compact-payload":
        from repro.compact.payload import CompactPayload

        return CompactPayload(
            main=decode_value(encoded["main"]),
            votes=decode_value(encoded["votes"]),
        )
    raise ValueError(f"unknown value tag {tag!r}")


__all__: List[str] = ["decode_value", "encode_value"]
