"""Causal DAG assembly and dynamic closedness checking.

The paper's canonical form is a claim about *which information flows
where and when*: a communication-closed protocol's causal structure is
exactly one deliver layer per round — every message sent in round
``r`` is consumed in round ``r`` and nowhere else.  This module turns
a recorded event log (``Observer(trace=True)``) into that structure
post hoc:

- :func:`build_dags` assembles one :class:`CausalDag` per recorded
  run, with a node per ``(process, round)`` state and an edge per
  delivered payload (bit-accounted) or per-process round transition;
- :func:`check_closedness` verifies the *dynamic* counterpart of
  protoflow's static FLOW verdict: every delivered edge respects its
  round bracket, deliveries precede the receiver's state update on
  the logical clock, and no channel delivers twice in one round.

Everything here is offline analysis over already-recorded JSON
records; nothing touches wall time, and the logical clock
(``{run, round, step}``) is the only ordering used.

``repro.statics.crosscheck`` replays the fuzz corpus under a tracing
observer and requires :func:`check_closedness` to agree with the
committed certificate catalog (``tools/protoflow_certificates.json``).
"""

from __future__ import annotations

import dataclasses
from typing import Any, Dict, List, Optional, Set, Tuple

#: A causal node: ``(process id, round)``.  Round 0 is the initial
#: state; a deliver in round ``r`` links the sender's round ``r - 1``
#: state to the receiver's round ``r`` state.
Node = Tuple[int, int]


@dataclasses.dataclass(frozen=True)
class CausalEdge:
    """One edge of the causal DAG.

    ``kind`` is ``"deliver"`` (a payload crossed the network) or
    ``"local"`` (a process carried its own state into the next round).
    ``bits`` is the information cost of the edge — the per-edge
    accounting the canonical form's communication bound is about; local
    edges cost nothing by definition.
    """

    kind: str
    src: Node
    dst: Node
    bits: int
    non_null: bool
    faulty: bool
    step: int

    def to_json(self) -> Dict[str, Any]:
        return {
            "kind": self.kind,
            "src": list(self.src),
            "dst": list(self.dst),
            "bits": self.bits,
            "non_null": self.non_null,
            "faulty": self.faulty,
            "step": self.step,
        }


@dataclasses.dataclass
class CausalDag:
    """The causal structure of one recorded run."""

    run: str
    n: int
    edges: List[CausalEdge] = dataclasses.field(default_factory=list)
    rounds: int = 0
    decisions: Dict[int, Any] = dataclasses.field(default_factory=dict)

    def deliver_edges(self) -> List[CausalEdge]:
        return [edge for edge in self.edges if edge.kind == "deliver"]

    def channel_bits(self) -> Dict[Tuple[int, int], int]:
        """Total bits per ``(sender, receiver)`` channel."""
        totals: Dict[Tuple[int, int], int] = {}
        for edge in self.deliver_edges():
            channel = (edge.src[0], edge.dst[0])
            totals[channel] = totals.get(channel, 0) + edge.bits
        return totals

    def round_bits(self) -> Dict[int, int]:
        """Total delivered bits per round."""
        totals: Dict[int, int] = {}
        for edge in self.deliver_edges():
            round_number = edge.dst[1]
            totals[round_number] = totals.get(round_number, 0) + edge.bits
        return totals

    def nodes(self) -> List[Node]:
        """Every node touched by an edge, sorted."""
        seen: Set[Node] = set()
        for edge in self.edges:
            seen.add(edge.src)
            seen.add(edge.dst)
        return sorted(seen)

    def to_json(self) -> Dict[str, Any]:
        return {
            "run": self.run,
            "n": self.n,
            "rounds": self.rounds,
            "edges": [edge.to_json() for edge in self.edges],
            "decisions": {
                str(process): value
                for process, value in sorted(self.decisions.items())
            },
            "channel_bits": {
                f"{sender}->{receiver}": bits
                for (sender, receiver), bits in sorted(
                    self.channel_bits().items()
                )
            },
            "round_bits": {
                str(round_number): bits
                for round_number, bits in sorted(self.round_bits().items())
            },
        }


def build_dags(records: List[Dict[str, Any]]) -> List[CausalDag]:
    """Assemble one causal DAG per recorded run.

    A ``deliver`` record in round ``r`` becomes a deliver edge
    ``(sender, r - 1) -> (receiver, r)``; the first ``state`` record a
    process emits in round ``r`` becomes a local edge
    ``(process, r - 1) -> (process, r)``.  Runs without ``trace=True``
    deliveries still produce a DAG of local edges.
    """
    dags: List[CausalDag] = []
    current: Optional[CausalDag] = None
    local_seen: Set[Node] = set()
    for record in records:
        kind = record.get("kind")
        if kind == "run_start":
            current = CausalDag(
                run=str(record.get("run")), n=int(record.get("n", 0))
            )
            local_seen = set()
            dags.append(current)
        elif current is None:
            continue
        elif kind == "deliver":
            round_number = int(record["round"])
            current.rounds = max(current.rounds, round_number)
            current.edges.append(
                CausalEdge(
                    kind="deliver",
                    src=(int(record["sender"]), round_number - 1),
                    dst=(int(record["receiver"]), round_number),
                    bits=int(record["bits"]),
                    non_null=bool(record["non_null"]),
                    faulty=bool(record["faulty"]),
                    step=int(record["step"]),
                )
            )
        elif kind == "state":
            round_number = int(record["round"])
            process = int(record["process"])
            node = (process, round_number)
            if node not in local_seen:
                local_seen.add(node)
                current.rounds = max(current.rounds, round_number)
                current.edges.append(
                    CausalEdge(
                        kind="local",
                        src=(process, round_number - 1),
                        dst=node,
                        bits=0,
                        non_null=False,
                        faulty=False,
                        step=int(record["step"]),
                    )
                )
        elif kind == "decide":
            current.decisions[int(record["process"])] = record.get("value")
        elif kind == "run_end":
            current.rounds = max(current.rounds, int(record.get("rounds", 0)))
            current = None
    return dags


def check_closedness(records: List[Dict[str, Any]]) -> List[str]:
    """Dynamic communication-closedness problems in a recorded log.

    The empty list certifies that every observed delivery respects the
    canonical form's round structure:

    - a ``deliver`` only occurs inside an open run and inside the
      round bracket (``round_start`` .. ``round_end``) it is stamped
      with — messages never leak across round boundaries;
    - within a round, every delivery to a processor precedes *that
      processor's* state update on the logical clock (the paper's
      send → receive → state-change phase order, tracked per
      receiver: under the async scheduler a processor whose closed
      message set is complete legitimately changes state while late
      messages are still in flight to *other* processors — the round
      skew docs/runtime.md describes — but a message arriving at a
      processor after its own round-``r`` state change could not have
      been consumed in round ``r``, which is exactly a closedness
      violation);
    - no ``(sender, receiver)`` channel delivers twice in one round —
      one envelope per channel per round is exactly the canonical
      form's message discipline.

    This is the dynamic counterpart of protoflow's static FLOW
    verdict: static analysis certifies the protocol *text* closed,
    this certifies a particular *execution* closed — under any
    scheduler backend.
    """
    problems: List[str] = []
    run: Optional[str] = None
    open_round: Optional[int] = None
    state_changed: Set[int] = set()
    delivered: Set[Tuple[int, int]] = set()
    for index, record in enumerate(records):
        kind = record.get("kind")
        if kind == "run_start":
            run = str(record.get("run"))
            open_round = None
        elif kind == "run_end":
            run = None
            open_round = None
        elif kind == "round_start":
            open_round = int(record["round"])
            state_changed = set()
            delivered = set()
        elif kind == "round_end":
            open_round = None
        elif kind == "deliver":
            round_number = int(record["round"])
            if run is None:
                problems.append(
                    f"record {index}: deliver outside any run"
                )
                continue
            if open_round is None:
                problems.append(
                    f"record {index}: run {run}: deliver in round "
                    f"{round_number} outside a round bracket"
                )
                continue
            if round_number != open_round:
                problems.append(
                    f"record {index}: run {run}: deliver stamped round "
                    f"{round_number} inside round {open_round} — not "
                    "communication-closed"
                )
            receiver = int(record["receiver"])
            if receiver in state_changed:
                problems.append(
                    f"record {index}: run {run}: round {round_number}: "
                    f"deliver to {receiver} after its state update — "
                    "send/receive phase order violated"
                )
            channel = (int(record["sender"]), receiver)
            if channel in delivered:
                problems.append(
                    f"record {index}: run {run}: round {round_number}: "
                    f"channel {channel[0]}->{channel[1]} delivered twice"
                )
            delivered.add(channel)
        elif kind == "state":
            if open_round is not None:
                state_changed.add(int(record["process"]))
    return problems


__all__ = [
    "CausalDag",
    "CausalEdge",
    "Node",
    "build_dags",
    "check_closedness",
]
