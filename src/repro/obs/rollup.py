"""Cross-worker telemetry rollups: ``repro status`` from artifacts.

A long parallel sweep or fuzz campaign streams compact ``rollup``
records — counter deltas per finished chunk / protocol / bench suite —
through its event log (:meth:`repro.obs.core.Observer.emit_rollup`).
This module reconstructs the state of such a run **from the artifact
alone**: progress against the announced plan, per-worker throughput,
cache hit rates (including ``persist.*``), and the top spans.  It
works equally on a finished log (which ends with the authoritative
``counters`` dump) and on the torn log of a killed run (deltas are
summed; the final partial line is skipped and counted).

``load_status`` accepts everything :func:`repro.obs.events.log_paths`
does: a single JSONL file, a rotated ``.part-N`` sequence, or a
directory of logs.
"""

from __future__ import annotations

import pathlib
from typing import Any, Dict, List, Tuple, Union

from repro.obs.events import log_paths, read_jsonl_lenient
from repro.obs.registry import InstrumentRegistry
from repro.obs.summarize import profile_records


def load_status(
    path: Union[str, pathlib.Path], top_spans: int = 5
) -> Dict[str, Any]:
    """The status of the (possibly in-flight) run recorded at ``path``."""
    records: List[Dict[str, Any]] = []
    skipped = 0
    for part in log_paths(path):
        part_records, part_skipped = read_jsonl_lenient(part)
        records.extend(part_records)
        skipped += part_skipped
    return status_from_records(records, skipped=skipped,
                               top_spans=top_spans)


def status_from_records(
    records: List[Dict[str, Any]],
    skipped: int = 0,
    top_spans: int = 5,
) -> Dict[str, Any]:
    """Reconstruct run status from loaded records.

    The deterministic section (runs, cells, counters, hit rates) comes
    from the deterministic log records; worker throughput and spans
    are wall-clock derived and reported under nondeterministic keys.
    """
    runs_started = 0
    runs_ended = 0
    serial_cells = 0
    pooled_cells = 0
    chunks = 0
    planned = 0
    rollup_counts: Dict[str, int] = {}
    suites: List[Dict[str, Any]] = []
    protocols: List[Dict[str, Any]] = []
    summed: Dict[str, int] = {}
    final_counters: Dict[str, int] = {}
    samples: List[Dict[str, Any]] = []
    pool: Dict[str, Any] = {}
    fuzz: Dict[str, Any] = {}
    for record in records:
        kind = record.get("kind")
        if kind == "run_start":
            runs_started += 1
        elif kind == "run_end":
            runs_ended += 1
        elif kind == "cell_end":
            serial_cells += 1
        elif kind == "chunk":
            chunks += 1
            pooled_cells += int(record.get("cells", 0))
        elif kind == "rollup":
            scope = str(record.get("scope"))
            rollup_counts[scope] = rollup_counts.get(scope, 0) + 1
            cells = int(record.get("cells", 0))
            if scope == "plan":
                planned += cells
            elif scope == "suite":
                suites.append(
                    {"index": record.get("index"), "cells": cells}
                )
            elif scope == "protocol":
                protocols.append(
                    {"index": record.get("index"), "cells": cells}
                )
            for name, delta in record.get("counters", {}).items():
                if isinstance(delta, int):
                    summed[name] = summed.get(name, 0) + delta
        elif kind == "counters":
            final_counters = dict(record.get("counters", {}))
        elif kind == "worker_sample":
            samples.append(record)
        elif kind == "workers":
            pool = {
                "workers": len(record.get("workers", [])),
                "wall_s": record.get("wall_s"),
                "idle_s": record.get("idle_s"),
            }
        elif kind == "fuzz_campaign":
            fuzz = {
                "seed": record.get("seed"),
                "executions": record.get("executions"),
                "failures": record.get("failures"),
                "shrunk": record.get("shrunk"),
            }
    complete = bool(final_counters)
    counters = (
        final_counters if complete
        else {name: summed[name] for name in sorted(summed)}
    )
    registry = InstrumentRegistry()
    registry.absorb(counters)
    hit_rates = {
        cache: {"rate": round(rate, 4), "hits": hits, "misses": misses}
        for cache, (rate, hits, misses) in registry.hit_rates().items()
    }
    workers: Dict[int, Dict[str, Any]] = {}
    for sample in samples:
        slot = int(sample.get("worker", 0))
        entry = workers.setdefault(
            slot, {"worker": slot, "chunks": 0, "cells": 0, "busy_s": 0.0}
        )
        entry["chunks"] += 1
        entry["cells"] += int(sample.get("cells", 0))
        entry["busy_s"] = round(
            entry["busy_s"] + float(sample.get("busy_s", 0.0)), 6
        )
    worker_rows: List[Dict[str, Any]] = []
    for slot in sorted(workers):
        entry = workers[slot]
        busy = entry["busy_s"]
        entry["cells_per_s"] = (
            round(entry["cells"] / busy, 1) if busy > 0 else None
        )
        worker_rows.append(entry)
    profile = profile_records(records)
    spans = sorted(
        profile["spans"].items(),
        key=lambda item: (-float(item[1]["total_s"]), item[0]),
    )[:top_spans]
    done = pooled_cells + serial_cells
    return {
        "phase": "complete" if complete else "in-flight",
        "records": len(records),
        "skipped_lines": skipped,
        "runs": {"started": runs_started, "ended": runs_ended},
        "cells": {
            "planned": planned,
            "pooled": pooled_cells,
            "serial": serial_cells,
            "done": done,
        },
        "progress": round(done / planned, 4) if planned > 0 else None,
        "chunks": chunks,
        "rollups": {
            scope: rollup_counts[scope] for scope in sorted(rollup_counts)
        },
        "suites": suites,
        "protocols": protocols,
        "counters": counters,
        "hit_rates": hit_rates,
        "fuzz": fuzz or None,
        "pool": pool or None,
        "workers": worker_rows,
        "top_spans": [
            {
                "span": path,
                "count": stats["count"],
                "total_s": stats["total_s"],
            }
            for path, stats in spans
        ],
    }


def render_status(status: Dict[str, Any]) -> str:
    """Aligned-text form of :func:`status_from_records`.

    Deterministic given the loaded records: rendering does no clock or
    filesystem reads, so the same artifact always prints the same
    bytes (pinned by ``tests/obs/``).
    """
    lines: List[str] = []
    phase = status["phase"]
    torn = status["skipped_lines"]
    suffix = f"  ({torn} torn line(s) skipped)" if torn else ""
    lines.append(f"status: {phase}{suffix}")
    runs = status["runs"]
    lines.append(
        f"runs: started {runs['started']}  ended {runs['ended']}"
    )
    cells = status["cells"]
    progress = status["progress"]
    progress_text = (
        f"  progress {progress * 100:.1f}%" if progress is not None else ""
    )
    lines.append(
        f"cells: done {cells['done']} "
        f"(pooled {cells['pooled']}, serial {cells['serial']}) "
        f"of planned {cells['planned']}{progress_text}"
    )
    if status["chunks"]:
        lines.append(f"chunks: {status['chunks']}")
    if status["suites"]:
        summary = "  ".join(
            f"suite[{entry['index']}]={entry['cells']}"
            for entry in status["suites"]
        )
        lines.append(f"bench suites: {summary}")
    if status["protocols"]:
        summary = "  ".join(
            f"protocol[{entry['index']}]={entry['cells']}"
            for entry in status["protocols"]
        )
        lines.append(f"fuzz protocols: {summary}")
    fuzz = status["fuzz"]
    if fuzz:
        lines.append(
            f"fuzz campaign: seed {fuzz['seed']}  "
            f"executions {fuzz['executions']}  "
            f"failures {fuzz['failures']}  shrunk {fuzz['shrunk']}"
        )
    if status["hit_rates"]:
        lines.append("")
        source = (
            "final dump" if phase == "complete" else "summed rollup deltas"
        )
        lines.append(f"cache hit rates ({source}):")
        for cache, stats in status["hit_rates"].items():
            lines.append(
                f"  {cache}: {stats['rate']:.2%} "
                f"({stats['hits']} hits, {stats['misses']} misses)"
            )
    if status["counters"]:
        lines.append("")
        lines.append("counters:")
        for name, value in status["counters"].items():
            lines.append(f"  {name} = {value}")
    if status["workers"] or status["pool"]:
        lines.append("")
        lines.append("per-worker throughput (nondeterministic):")
        for entry in status["workers"]:
            rate = entry.get("cells_per_s")
            rate_text = f"  {rate} cells/s" if rate is not None else ""
            lines.append(
                f"  worker {entry['worker']}: chunks {entry['chunks']}  "
                f"cells {entry['cells']}  busy {entry['busy_s']}s"
                f"{rate_text}"
            )
        pool = status["pool"]
        if pool:
            lines.append(
                f"  pool: {pool['workers']} worker(s), "
                f"wall {pool['wall_s']}s, idle {pool['idle_s']}s"
            )
    if status["top_spans"]:
        lines.append("")
        lines.append("top spans (nondeterministic):")
        for entry in status["top_spans"]:
            lines.append(
                f"  {entry['span']}: {entry['total_s']}s "
                f"x{entry['count']}"
            )
    return "\n".join(lines)


__all__ = ["load_status", "render_status", "status_from_records"]
