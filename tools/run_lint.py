#!/usr/bin/env python
"""Standalone entry point for protolint (``repro.statics``).

Equivalent to ``python -m repro lint`` but importable without
installing the package: it prepends the checkout's ``src/`` to
``sys.path``, so CI and pre-commit hooks can call it directly.

Run:  python tools/run_lint.py [--format json] [--update-baseline]
"""

from __future__ import annotations

import pathlib
import sys

ROOT = pathlib.Path(__file__).resolve().parent.parent
SRC = ROOT / "src"


def main(argv=None) -> int:
    """Run ``repro lint``, defaulting the root and baseline to this checkout."""
    if str(SRC) not in sys.path:
        sys.path.insert(0, str(SRC))
    from repro.cli import main as cli_main

    argv = list(sys.argv[1:] if argv is None else argv)
    if not any(arg.startswith("--root") for arg in argv):
        argv += ["--root", str(SRC / "repro")]
    if not any(arg.startswith("--baseline") for arg in argv):
        baseline = ROOT / "tools" / "lint_baseline.json"
        if baseline.is_file():
            argv += ["--baseline", str(baseline)]
    return cli_main(["lint"] + argv)


if __name__ == "__main__":
    sys.exit(main())
