"""Beyond-paper extensions, measured (recorded in EXPERIMENTS.md).

Not reproductions of paper artifacts — quantified evidence for the
repository's own additions:

* interactive consistency through the canonical form (a third
  application of the transformation),
* the Byzantine firing squad built from staggered simultaneous
  agreements,
* the polynomial-space lazy decision path at the suite's largest
  configuration,
* the authenticated-model compact variant reaching the ``t + 1``
  round optimum with zero overhead.
"""

import time

from repro.adversary import EquivocatingAdversary, SilentAdversary
from repro.agreement.firing_squad import fire_deadline, firing_squad_factory
from repro.analysis.report import format_table
from repro.compact.byzantine_agreement import compact_ba_rounds
from repro.compact.lazy_decision import lazy_compact_ba_factory
from repro.compact.payload import compact_sizer, payload_is_null
from repro.compact.protocol import compact_factory
from repro.core.rounds import BlockSchedule
from repro.fullinfo.interactive import make_interactive_consistency_rule
from repro.runtime.engine import run_protocol
from repro.types import BOTTOM, SystemConfig

from conftest import publish


def interactive_consistency_rows():
    rows = []
    for n, t in ((4, 1), (7, 2)):
        config = SystemConfig(n=n, t=t)
        inputs = {p: p % 3 for p in config.process_ids}
        rule = make_interactive_consistency_rule(
            t, default=0, alphabet=[0, 1, 2]
        )
        deadline = BlockSchedule(2).actual_rounds_for(t + 1)
        result = run_protocol(
            compact_factory(
                k=2,
                value_alphabet=[0, 1, 2],
                decision_rule=rule,
                horizon=t + 1,
            ),
            config,
            inputs,
            adversary=EquivocatingAdversary([n], 0, 2),
            max_rounds=deadline + 1,
            sizer=compact_sizer(config, 3),
            is_null=payload_is_null,
        )
        vectors = set(result.decisions.values())
        assert len(vectors) == 1
        vector = next(iter(vectors))
        correct_components_right = all(
            vector[p - 1] == inputs[p] for p in result.processes
        )
        assert correct_components_right
        rows.append(
            {
                "n": n,
                "t": t,
                "agreed vector": vector,
                "rounds": result.rounds,
                "bits": result.metrics.total_bits,
            }
        )
    return rows


def firing_squad_rows():
    config = SystemConfig(n=7, t=2)
    rows = []
    for label, inputs in (
        ("staggered GOs 1..3", {p: (p % 3) + 1 for p in config.process_ids}),
        ("no stimulus", {p: BOTTOM for p in config.process_ids}),
    ):
        result = run_protocol(
            firing_squad_factory(),
            config,
            inputs,
            adversary=SilentAdversary([6, 7]),
            run_full_rounds=10,
        )
        fire_rounds = {
            r
            for p, r in result.decision_rounds.items()
            if result.decisions[p] == "FIRE"
        }
        rows.append(
            {
                "scenario": label,
                "fired": "yes" if fire_rounds else "no",
                "fire rounds": sorted(fire_rounds) or "-",
                "deadline": fire_deadline(3, config.t),
            }
        )
    assert rows[0]["fired"] == "yes" and len(rows[0]["fire rounds"]) == 1
    assert rows[1]["fired"] == "no"
    return rows


def lazy_rows():
    config = SystemConfig(n=10, t=3)
    inputs = {p: p % 2 for p in config.process_ids}
    start = time.perf_counter()
    result = run_protocol(
        lazy_compact_ba_factory([0, 1], default=0, k=1),
        config,
        inputs,
        adversary=EquivocatingAdversary([1, 2, 3], 0, 1),
        max_rounds=compact_ba_rounds(3, 1) + 1,
    )
    elapsed = time.perf_counter() - start
    assert len(result.decided_values()) == 1
    return [
        {
            "n": config.n,
            "t": config.t,
            "rounds": result.rounds,
            "distinct chains resolved": 10 * 9 * 8 * 7,
            "full tree (never built)": 10**4,
            "wall time (s)": round(elapsed, 3),
        }
    ]


def authenticated_rows():
    from repro.compact.authenticated_variant import (
        auth_compact_ba_factory,
        auth_sizer,
    )
    from repro.compact.byzantine_agreement import (
        compact_ba_rounds,
        run_compact_byzantine_agreement,
    )
    from repro.runtime.crypto import SignatureOracle

    rows = []
    for t in (1, 2):
        n = 3 * t + 1
        config = SystemConfig(n=n, t=t)
        inputs = {p: p % 2 for p in config.process_ids}
        plain = run_compact_byzantine_agreement(
            config, inputs, value_alphabet=[0, 1], k=1,
            adversary=EquivocatingAdversary(list(range(1, t + 1)), 0, 1),
        )
        authenticated = run_protocol(
            auth_compact_ba_factory(config, [0, 1], SignatureOracle(), k=1),
            config,
            inputs,
            adversary=EquivocatingAdversary(list(range(1, t + 1)), 0, 1),
            max_rounds=t + 2,
            sizer=auth_sizer(config, 2),
        )
        assert authenticated.rounds == t + 1
        assert len(authenticated.decided_values()) == 1
        rows.append(
            {
                "n": n,
                "t": t,
                "rounds non-crypto (k=1)": plain.rounds,
                "rounds authenticated": authenticated.rounds,
                "t+1 lower bound": t + 1,
                "bits authenticated": authenticated.metrics.total_bits,
            }
        )
    return rows


def test_extensions(benchmark):
    ic = interactive_consistency_rows()
    squad = firing_squad_rows()
    auth = authenticated_rows()
    lazy = benchmark(lazy_rows)
    publish(
        "extensions",
        format_table(
            ic, title="X1 — interactive consistency via the canonical form"
        )
        + "\n\n"
        + format_table(squad, title="X2 — Byzantine firing squad")
        + "\n\n"
        + format_table(
            lazy, title="X3 — polynomial-space decisions at n = 10, t = 3"
        )
        + "\n\n"
        + format_table(
            auth,
            title="X4 — authenticated model: t + 1 rounds, no overhead",
        ),
    )
