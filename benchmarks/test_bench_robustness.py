"""Experiment E9 (extension) — robustness sweep of Corollary 10.

Not a single paper artifact but the aggregate statement behind all of
them: across input patterns x fault placements x the whole adversary
gallery x seeds, the compact Byzantine agreement protocol never
violates agreement or validity, always decides at exactly the
schedule's round, and stays within its communication budget.
"""

from repro.analysis.report import format_table
from repro.analysis.sweeps import standard_adversary_makers, sweep
from repro.compact.byzantine_agreement import (
    compact_ba_factory,
    compact_ba_rounds,
)
from repro.compact.payload import compact_sizer, payload_is_null
from repro.core.predicates import byzantine_agreement_predicate
from repro.types import SystemConfig

from conftest import publish


def run_sweep(config, k):
    factory = compact_ba_factory(config, [0, 1], default=0, k=k)
    return sweep(
        factory,
        config,
        input_patterns=[
            {p: p % 2 for p in config.process_ids},
            {p: (p + 1) % 2 for p in config.process_ids},
            {p: 1 for p in config.process_ids},
        ],
        fault_sets=[
            tuple(range(1, config.t + 1)),
            tuple(range(config.n - config.t + 1, config.n + 1)),
        ],
        adversary_makers=standard_adversary_makers(),
        seeds=(0, 1),
        predicate=byzantine_agreement_predicate(),
        max_rounds=compact_ba_rounds(config.t, k) + 1,
        sizer=compact_sizer(config, 2),
        is_null=payload_is_null,
    )


def test_robustness_sweep(benchmark):
    rows = []
    for n, t, k in ((4, 1, 2), (7, 2, 1)):
        config = SystemConfig(n=n, t=t)
        report = run_sweep(config, k)
        assert report.all_hold(), [
            outcome.describe() for outcome in report.violations
        ]
        expected_round = compact_ba_rounds(t, k)
        assert all(
            outcome.result.rounds == expected_round
            for outcome in report.outcomes
        )
        rows.append(
            {
                "n": n,
                "t": t,
                "k": k,
                "executions": report.executions,
                "violations": len(report.violations),
                "decision round (all runs)": expected_round,
                "total bits swept": report.total_bits(),
            }
        )

    publish(
        "robustness",
        format_table(
            rows,
            title=(
                "E9 (extension) — Corollary 10 robustness sweep: "
                "patterns x faults x strategies x seeds"
            ),
        ),
    )

    config = SystemConfig(n=4, t=1)
    benchmark(run_sweep, config, 2)
