"""Experiment E3 — message bits: exponential vs polynomial (abstract).

Paper claims reproduced:

* the full-information/EIG baseline uses exponentially growing
  communication (measured bit-for-bit against the closed-form model),
* the compact protocol's traffic is polynomial — its growth factor per
  ``t`` step collapses relative to the baseline's, and the curves
  cross (the baseline loses) as the system grows.
"""

from repro.adversary import EquivocatingAdversary
from repro.agreement.eig_agreement import run_eig_agreement
from repro.analysis.complexity import compact_bits_estimate, eig_total_bits
from repro.analysis.report import format_table
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.types import SystemConfig

from conftest import publish


def test_bits_growth(benchmark):
    rows = []
    measured = {}
    for t in (1, 2, 3):
        n = 3 * t + 1
        config = SystemConfig(n=n, t=t)
        inputs = {p: p % 2 for p in config.process_ids}
        adversary = EquivocatingAdversary(list(range(1, t + 1)), 0, 1)

        eig = run_eig_agreement(
            config, inputs, [0, 1],
            adversary=EquivocatingAdversary(list(range(1, t + 1)), 0, 1),
        )
        compact = run_compact_byzantine_agreement(
            config, inputs, value_alphabet=[0, 1], k=1, adversary=adversary
        )
        measured[t] = (eig.metrics.total_bits, compact.metrics.total_bits)
        rows.append(
            {
                "n": n,
                "t": t,
                "EIG bits (measured)": eig.metrics.total_bits,
                "EIG bits (model, fault-free)": eig_total_bits(n, t, 2),
                "compact k=1 bits (measured)": compact.metrics.total_bits,
                "compact bits (paper O-bound, c=1)": compact_bits_estimate(
                    n, t, 1, 2
                ),
            }
        )

    # Shape claim 1: the baseline's growth factor explodes; the
    # compact protocol's stays bounded.
    eig_growth = measured[3][0] / measured[2][0]
    compact_growth = measured[3][1] / measured[2][1]
    assert eig_growth > 2 * compact_growth

    # Shape claim 2 (crossover): extrapolated by the models, the
    # exponential baseline loses for larger t even though it may win
    # at toy sizes.
    crossover = None
    for t in range(1, 16):
        n = 3 * t + 1
        if compact_bits_estimate(n, t, 1, 2) < eig_total_bits(n, t, 2):
            crossover = t
            break
    assert crossover is not None

    rows_model = [
        {
            "t": t,
            "n": 3 * t + 1,
            "EIG model bits": eig_total_bits(3 * t + 1, t, 2),
            "compact model bits (k=1)": compact_bits_estimate(
                3 * t + 1, t, 1, 2
            ),
            "winner": "compact"
            if compact_bits_estimate(3 * t + 1, t, 1, 2)
            < eig_total_bits(3 * t + 1, t, 2)
            else "EIG",
        }
        for t in range(1, 9)
    ]

    from repro.analysis.figures import crossover_chart

    publish(
        "bits",
        format_table(rows, title="E3 — measured message bits (adversarial runs)")
        + "\n\n"
        + format_table(
            rows_model,
            title=f"E3b — model extrapolation (crossover at t = {crossover})",
        )
        + "\n\n"
        + crossover_chart(max_t=8, k=1),
    )

    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 2 for p in config.process_ids}
    benchmark(
        run_eig_agreement, config, inputs, [0, 1],
    )
