"""Experiment E5 — the simulation is exact (Theorem 9 / Corollary 10).

Paper claims reproduced:

* every reconstructed ``FULL_STATE`` family under faults is consistent
  with a genuine execution of the full-information protocol (the
  existence half of the simulation relation),
* decisions of the compact protocol equal the exponential protocol's
  on fault-free executions (same decision rule, same simulated state).
"""

from repro.adversary import (
    CollusionAdversary,
    EquivocatingAdversary,
    MalformedArrayAdversary,
    SilentAdversary,
)
from repro.agreement.eig_agreement import run_eig_agreement
from repro.analysis.report import format_table
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.core.simulation import check_fullinfo_consistency
from repro.types import SystemConfig

from conftest import publish

ADVERSARIES = [
    ("silent", SilentAdversary),
    ("equivocator", lambda f: EquivocatingAdversary(f, 0, 1)),
    ("malformed", MalformedArrayAdversary),
    ("collusion", CollusionAdversary),
]


def collect_full_states(result, inputs, correct):
    states = {p: [inputs[p]] for p in correct}
    seen = {p: 0 for p in correct}
    for round_number in result.trace.rounds:
        for process_id in correct:
            snapshot = result.trace.snapshot(round_number, process_id)
            if (
                snapshot
                and "full_state" in snapshot
                and snapshot["simul"] == seen[process_id] + 1
            ):
                states[process_id].append(snapshot["full_state"])
                seen[process_id] += 1
    return states


def check_one(config, faulty, adversary_maker, seed):
    inputs = {p: (p + seed) % 2 for p in config.process_ids}
    result = run_compact_byzantine_agreement(
        config,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=adversary_maker(list(faulty)),
        seed=seed,
        record_trace=True,
        expose_full_state=True,
    )
    correct = sorted(result.processes)
    check_fullinfo_consistency(
        collect_full_states(result, inputs, correct),
        correct,
        inputs,
        config.n,
        value_alphabet=[0, 1],
    )
    return result


def test_simulation_fidelity(benchmark):
    config = SystemConfig(n=4, t=1)
    rows = []
    for name, maker in ADVERSARIES:
        verified = 0
        for faulty in ((1,), (2,), (4,)):
            for seed in range(3):
                result = check_one(config, faulty, maker, seed)
                verified += result.rounds
        rows.append(
            {
                "adversary": name,
                "executions": 9,
                "rounds verified": verified,
                "violations": 0,
            }
        )

    # Decision equivalence with the exponential protocol, fault-free.
    config7 = SystemConfig(n=7, t=2)
    matches = 0
    for pattern in range(4):
        inputs = {p: (p * pattern + p) % 2 for p in config7.process_ids}
        compact = run_compact_byzantine_agreement(
            config7, inputs, value_alphabet=[0, 1], k=2
        )
        exponential = run_eig_agreement(config7, inputs, [0, 1])
        assert compact.decisions == exponential.decisions
        matches += 1

    rows.append(
        {
            "adversary": "(fault-free, decision equivalence vs EIG)",
            "executions": matches,
            "rounds verified": "-",
            "violations": 0,
        }
    )

    publish(
        "simulation_fidelity",
        format_table(rows, title="E5 — Theorem 9 fidelity checks"),
    )

    benchmark(check_one, config, (2,), ADVERSARIES[3][1], 0)
