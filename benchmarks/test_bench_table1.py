"""Experiment T1 — regenerate Table 1 (Section 5.1).

Paper artifact: "Table 1: An Execution of 14 Rounds with k = 2" —
``block / prior / phase / simul`` for rounds 1..14, reaching 8
simulated rounds.
"""

from repro.analysis.report import format_table
from repro.core.rounds import BlockSchedule

from conftest import publish

EXPECTED_SIMUL = [1, 2, 2, 2, 3, 4, 4, 4, 5, 6, 6, 6, 7, 8]


def test_table1(benchmark):
    schedule = BlockSchedule(k=2)
    rows = benchmark(schedule.table, 14)

    assert [row["simul"] for row in rows] == EXPECTED_SIMUL
    assert rows[-1]["simul"] == 8  # the caption's 8 simulated rounds

    publish(
        "table1",
        format_table(
            rows,
            columns=["r", "block", "prior", "phase", "simul"],
            title="Table 1 — 14 actual rounds, k = 2 (paper: 8 simulated rounds)",
        ),
    )
