"""Experiment E8 — benign fault models: no round increase (Section 1).

Paper claim reproduced: "In more benign fault models like
failure-by-omission and fail-stop there is a simple extension of our
transformation that causes no increase in the number of rounds."  The
benign variant runs in exactly ``t + 1`` rounds (``simul(r) = r``)
under crash and omission faults while keeping per-message sizes
polynomial (depth capped at ``k``).
"""

from repro.adversary.crash import CrashAdversary
from repro.adversary.omission import OmissionAdversary
from repro.analysis.report import format_table
from repro.compact.crash_variant import crash_compact_factory, crash_sizer
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig

from conftest import publish

ALPHABET = [0, 1, 2]


def run_benign(config, inputs, adversary_maker, k, seed=0):
    factory = crash_compact_factory(k=k, value_alphabet=ALPHABET, t=config.t)
    return run_protocol(
        factory,
        config,
        inputs,
        adversary=adversary_maker(factory),
        max_rounds=config.t + 2,
        sizer=crash_sizer(config, len(ALPHABET)),
        seed=seed,
    )


def test_benign_no_overhead(benchmark):
    rows = []
    for t in (1, 2, 3):
        n = 3 * t + 1
        config = SystemConfig(n=n, t=t)
        inputs = {p: p % 3 for p in config.process_ids}
        faulty = {i: i for i in range(1, t + 1)}  # crash i at round i

        for k in (1, 2):
            crash = run_benign(
                config,
                inputs,
                lambda factory: CrashAdversary(faulty, factory, 0.5),
                k=k,
            )
            omission = run_benign(
                config,
                inputs,
                lambda factory: OmissionAdversary(
                    list(faulty), factory, drop_probability=0.4
                ),
                k=k,
                seed=5,
            )
            for label, result in (("crash", crash), ("omission", omission)):
                assert result.rounds == t + 1, "round overhead appeared"
                assert len(result.decided_values()) == 1
                rows.append(
                    {
                        "model": label,
                        "n": n,
                        "t": t,
                        "k": k,
                        "rounds (paper: t+1)": result.rounds,
                        "t+1": t + 1,
                        "bits": result.metrics.total_bits,
                    }
                )

    publish(
        "benign",
        format_table(rows, title="E8 — benign models: zero round overhead"),
    )

    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 3 for p in config.process_ids}
    factory = crash_compact_factory(k=2, value_alphabet=ALPHABET, t=config.t)

    def run_once():
        # A fresh adversary per iteration: crash adversaries carry
        # ghost-process state that must not leak across runs.
        return run_protocol(
            factory,
            config,
            inputs,
            adversary=CrashAdversary({1: 1, 2: 2}, factory, 0.5),
            max_rounds=config.t + 2,
        )

    benchmark(run_once)
