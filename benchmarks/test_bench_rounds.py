"""Experiment E2 — round counts (Corollary 10 and the Section 5.6 claim).

Paper claims reproduced:

* the compact protocol decides within ``(1 + eps)(t + 1)`` rounds,
* with ``eps = 1`` that undercuts Srikanth–Toueg's ``2t + 1`` by round
  counts that converge to the ``t + 1`` lower bound as ``eps -> 0``
  ("approaches the known lower bound for rounds to within a small
  factor arbitrarily close to 1"),
* measured decision rounds equal the schedule's prediction exactly.
"""

from repro.adversary import EquivocatingAdversary
from repro.analysis.report import format_table
from repro.analysis.tradeoff import epsilon_table
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.core.rounds import k_for_epsilon
from repro.types import SystemConfig

from conftest import publish

EPSILONS = (2.0, 1.0, 0.5, 0.25)


def test_round_sweep(benchmark):
    rows = []
    for t in (1, 2, 3):
        lower_bound = t + 1
        st_rounds = 2 * t + 1
        for epsilon in EPSILONS:
            k = k_for_epsilon(epsilon)
            predicted = compact_ba_rounds(t, k)
            assert predicted <= (1 + epsilon) * (t + 1)
            row = {
                "t": t,
                "eps": epsilon,
                "k": k,
                "rounds (compact)": predicted,
                "guarantee (1+eps)(t+1)": (1 + epsilon) * (t + 1),
                "Srikanth-Toueg": st_rounds,
                "lower bound": lower_bound,
            }
            # Measure the small configurations end to end.
            if t <= 2 and k <= 4:
                config = SystemConfig(n=3 * t + 1, t=t)
                inputs = {p: p % 2 for p in config.process_ids}
                result = run_compact_byzantine_agreement(
                    config,
                    inputs,
                    value_alphabet=[0, 1],
                    k=k,
                    adversary=EquivocatingAdversary(
                        list(range(1, t + 1)), 0, 1
                    ),
                )
                assert result.rounds == predicted
                row["measured"] = result.rounds
            rows.append(row)

    # The "arbitrarily close to 1" claim: k >= t+1 hits the bound.
    for t in (1, 2, 3):
        assert compact_ba_rounds(t, k=t + 1) == t + 1

    # E2c: the tradeoff's other axis — measured bits as k varies at a
    # fixed system size (more patience -> fewer bits... until a single
    # block needs no avalanche at all).
    bits_rows = []
    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 2 for p in config.process_ids}
    for k in (1, 2, 3, 4):
        result = run_compact_byzantine_agreement(
            config,
            inputs,
            value_alphabet=[0, 1],
            k=k,
            adversary=EquivocatingAdversary([1, 2], 0, 1),
        )
        bits_rows.append(
            {
                "k": k,
                "rounds": result.rounds,
                "bits (measured)": result.metrics.total_bits,
                "message exponent n^k": k,
            }
        )

    publish(
        "rounds",
        format_table(rows, title="E2 — rounds: compact vs Srikanth-Toueg vs lower bound")
        + "\n\n"
        + format_table(
            epsilon_table(EPSILONS, t=4),
            title="E2b — the eps <-> k tradeoff at t = 4",
        )
        + "\n\n"
        + format_table(
            bits_rows,
            title="E2c — measured rounds/bits across k (n = 7, t = 2)",
        ),
    )

    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 2 for p in config.process_ids}
    benchmark(
        run_compact_byzantine_agreement,
        config,
        inputs,
        value_alphabet=[0, 1],
        k=2,
        adversary=EquivocatingAdversary([1, 2], 0, 1),
    )
