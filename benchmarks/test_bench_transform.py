"""Experiment E6 — the transform's generality (Section 5.6).

Paper claim reproduced: "our technique is more general and may
therefore have greater applicability (e.g., reducing the
communications cost of the approximate agreement protocol of
Fekete)".  Approximate agreement goes through the canonical form and
keeps epsilon-agreement and range validity while its communication
drops from the exponential full-information figure to the compact
protocol's polynomial one.
"""

from repro.adversary import EquivocatingAdversary
from repro.agreement.approximate import ApproximateAgreementAutomaton
from repro.analysis.report import format_table
from repro.core.predicates import approximate_agreement_predicate
from repro.core.transform import canonical_form, full_information_form
from repro.types import SystemConfig

from conftest import publish

GRID = list(range(0, 33))
INPUTS = {1: 0, 2: 32, 3: 16, 4: 8, 5: 24, 6: 4, 7: 28}


def test_transform_generality(benchmark):
    config = SystemConfig(n=7, t=2)
    automaton = ApproximateAgreementAutomaton(config, GRID, rounds=4)
    target_epsilon = 32 / 2**4 + 1  # halvings plus grid rounding
    predicate = approximate_agreement_predicate(target_epsilon)

    rows = []
    fullinfo = full_information_form(automaton).run(INPUTS)
    rows.append(
        {
            "form": "full-information (Theorem 2 only)",
            "rounds": fullinfo.rounds,
            "bits": fullinfo.metrics.total_bits,
            "spread": max(map(float, fullinfo.decided_values()))
            - min(map(float, fullinfo.decided_values())),
        }
    )

    for k in (1, 2):
        form = canonical_form(automaton, k=k)
        adversary = EquivocatingAdversary([2, 5], 0, 32)
        result = form.run(INPUTS, adversary=adversary)
        values = [float(v) for v in result.decided_values()]
        assert predicate(
            result.answer_vector(),
            frozenset(result.faulty_ids),
            tuple(INPUTS[p] for p in config.process_ids),
        )
        rows.append(
            {
                "form": f"compact canonical form (k={k}, under faults)",
                "rounds": result.rounds,
                "bits": result.metrics.total_bits,
                "spread": max(values) - min(values),
            }
        )

    # Communication claim: the compact form undercuts the exponential
    # full-information run of the very same source protocol.
    assert rows[1]["bits"] < rows[0]["bits"]

    publish(
        "transform",
        format_table(
            rows,
            title=(
                "E6 — approximate agreement through the canonical form "
                f"(target spread <= {target_epsilon})"
            ),
        ),
    )

    form = canonical_form(automaton, k=1)
    benchmark(form.run, INPUTS)
