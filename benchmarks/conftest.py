"""Shared helpers for the benchmark/reproduction harness.

Every benchmark module regenerates one of the paper's artifacts
(DESIGN.md's experiment index) and

* prints the reproduction table (visible with ``pytest -s``),
* writes it under ``benchmarks/results/`` for EXPERIMENTS.md,
* asserts the *shape* claims (who wins, growth exponents, round
  guarantees) so regressions fail loudly,
* times a representative operation via pytest-benchmark.
"""

from __future__ import annotations

import pathlib

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


def publish(name: str, text: str) -> None:
    """Print a reproduction table and persist it under results/."""
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print()
    print(text)
