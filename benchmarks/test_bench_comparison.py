"""Experiment E4 — the Section 5.6 comparison table.

Paper text reproduced: "We compare the cost (i.e., rounds and message
bits) of our Byzantine agreement protocol ... with the cost of the
protocol of Srikanth and Toueg ... We find that our protocol uses
somewhat more message bits, but it allows us to greatly reduce the
number of rounds."
"""

from repro.adversary import EquivocatingAdversary
from repro.analysis.compare import comparison_table, measured_comparison
from repro.analysis.report import format_table

from conftest import publish


def test_section_5_6_comparison(benchmark):
    analytic = comparison_table(t=2)
    measured = benchmark(
        measured_comparison,
        2,
        lambda faulty: EquivocatingAdversary(faulty, 0, 1),
    )

    by_name = {row["protocol"]: row for row in measured}
    compact_eps1 = by_name["compact (eps=1.0)"]
    st = by_name["Srikanth-Toueg style"]
    eig = by_name["exponential EIG"]

    # Round ordering: EIG (optimal) <= compact(eps=1) <= ~ST's class;
    # the paper's headline is that compact beats ST's round count
    # while staying polynomial.
    assert eig["rounds"] == 3  # t + 1
    assert compact_eps1["rounds"] <= st["rounds"]

    # "somewhat more message bits" than ST: compact pays a polynomial
    # premium over ST for its round advantage.
    assert compact_eps1["bits"] > st["bits"]

    # Everything agreed.
    for row in measured:
        assert len(row["decisions"]) == 1

    publish(
        "comparison",
        format_table(analytic, title="E4a — Section 5.6, analytic (t = 2, n = 7)")
        + "\n\n"
        + format_table(
            measured,
            columns=["protocol", "rounds", "bits", "decisions"],
            title="E4b — Section 5.6, measured under equivocating faults",
        ),
    )
