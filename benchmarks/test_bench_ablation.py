"""Ablation benchmarks for the design choices DESIGN.md calls out.

* **Null-message coding (Section 4)** — with the convention, avalanche
  traffic is bounded by value *changes* (at most 3 per processor);
  without it, cost grows linearly with the number of rounds the
  instances stay alive.  The gap is the convention's whole point.
* **Lazy vs eager decision (the paper's open question)** — resolving
  the EIG rule directly on the compressed state touches only
  distinct-chain leaves; expanding FULL_STATE first touches the whole
  ``n^(t+1)`` tree.
"""

from repro.adversary import VoteSplitterAdversary
from repro.analysis.report import format_table
from repro.arrays.encoding import bits_for_alphabet
from repro.avalanche.coding import NullEncoder, is_null_message
from repro.avalanche.protocol import avalanche_factory
from repro.compact.byzantine_agreement import run_compact_byzantine_agreement
from repro.compact.lazy_decision import lazy_eig_decision
from repro.fullinfo.decision import eig_byzantine_decision
from repro.arrays.value_array import count_leaves
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig, is_bottom

from conftest import publish


def coding_ablation_rows():
    rows = []
    value_bits = bits_for_alphabet(2)
    for rounds in (4, 8, 16):
        config = SystemConfig(n=7, t=2)
        inputs = {p: ("v" if p % 3 else "w") for p in config.process_ids}
        result = run_protocol(
            avalanche_factory(),
            config,
            inputs,
            adversary=VoteSplitterAdversary([1, 2]),
            run_full_rounds=rounds,
            record_trace=True,
        )
        with_coding = 0
        without_coding = 0
        for process_id in result.processes:
            stream = [
                envelope.payload
                for envelope in result.trace.messages_from(process_id)
                if envelope.receiver == process_id
            ]
            encoder = NullEncoder()
            for item in stream:
                encoded = encoder.encode(item)
                if not is_bottom(item):
                    without_coding += value_bits * config.n
                if not is_null_message(encoded) and not is_bottom(encoded):
                    with_coding += value_bits * config.n
        rows.append(
            {
                "rounds run": rounds,
                "bits with coding": with_coding,
                "bits without": without_coding,
                "saving": f"{without_coding / max(1, with_coding):.1f}x",
            }
        )
    # The coded cost must be round-count independent; the uncoded cost
    # must keep growing.
    assert rows[0]["bits with coding"] == rows[2]["bits with coding"]
    assert rows[2]["bits without"] > rows[0]["bits without"]
    return rows


def decision_ablation(benchmark):
    config = SystemConfig(n=7, t=2)
    inputs = {p: p % 2 for p in config.process_ids}
    result = run_compact_byzantine_agreement(
        config, inputs, value_alphabet=[0, 1], k=1
    )
    process = result.processes[1]

    counter = [0]
    lazy_value = lazy_eig_decision(
        process.expansion,
        process.core_boundary,
        process.core,
        n=config.n,
        t=config.t,
        default=0,
        alphabet=[0, 1],
        _counter=counter,
    )
    eager_state = process.full_state()
    eager_value = eig_byzantine_decision(
        eager_state, config.n, config.t, 1, default=0, alphabet=[0, 1]
    )
    assert lazy_value == eager_value

    distinct_leaves = 7 * 6 * 5  # chains with distinct labels
    rows = [
        {
            "path": "eager (expand FULL_STATE first)",
            "leaves read": count_leaves(eager_state),
            "node visits": "O(n^(t+1)) to materialise",
            "exponential array built": "yes",
            "decision": eager_value,
        },
        {
            "path": "lazy (resolve on compressed CORE)",
            "leaves read": distinct_leaves,
            "node visits": counter[0],
            "exponential array built": "no",
            "decision": lazy_value,
        },
    ]
    # The lazy path reads only distinct-chain leaves (210 of 343 here;
    # the gap widens as n grows at fixed t) and, decisively, never
    # materialises the exponential array — the space claim the paper
    # leaves open.
    assert distinct_leaves < count_leaves(eager_state)
    assert counter[0] <= distinct_leaves * (config.t + 1 + 3)

    benchmark(
        lazy_eig_decision,
        process.expansion,
        process.core_boundary,
        process.core,
        n=config.n,
        t=config.t,
        default=0,
        alphabet=[0, 1],
    )
    return rows


def test_ablations(benchmark):
    coding_rows = coding_ablation_rows()
    decision_rows = decision_ablation(benchmark)
    publish(
        "ablation",
        format_table(
            coding_rows,
            title="A1 — null-message coding: bounded vs linear avalanche cost",
        )
        + "\n\n"
        + format_table(
            decision_rows,
            title="A2 — decision work: eager expansion vs lazy resolution",
        ),
    )
