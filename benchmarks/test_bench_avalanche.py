"""Experiment E1 — avalanche agreement costs (Section 4).

Paper claims reproduced:

* the consensus condition: unanimous executions decide in round 2
  (round 1 for the fast variant),
* the coding convention: "each correct processor sends at most 3
  non-null messages in any execution", giving O(n^2 log |V|) bits.
"""

import pytest

from repro.adversary import EquivocatingAdversary, VoteSplitterAdversary
from repro.analysis.report import format_table
from repro.arrays.encoding import MessageSizer, bits_for_alphabet
from repro.avalanche.coding import NullEncoder, is_null_message
from repro.avalanche.fast import fast_thresholds
from repro.avalanche.protocol import avalanche_factory
from repro.runtime.engine import run_protocol
from repro.types import SystemConfig, is_bottom

from conftest import publish


def run_with_coding(config, inputs, adversary, rounds, thresholds=None, seed=0):
    """Run Protocol 2 and recount its traffic under the null coding."""
    result = run_protocol(
        avalanche_factory(thresholds=thresholds),
        config,
        inputs,
        adversary=adversary,
        run_full_rounds=rounds,
        record_trace=True,
        seed=seed,
    )
    value_bits = bits_for_alphabet(2)
    non_null = {}
    coded_bits = 0
    for process_id in result.processes:
        stream = [
            envelope.payload
            for envelope in result.trace.messages_from(process_id)
            if envelope.receiver == process_id
        ]
        encoder = NullEncoder()
        count = 0
        for item in stream:
            encoded = encoder.encode(item)
            if not is_null_message(encoded) and not is_bottom(encoded):
                count += 1
                coded_bits += value_bits * config.n  # one broadcast
        non_null[process_id] = count
    return result, non_null, coded_bits


def test_avalanche_costs(benchmark):
    rows = []
    for t in (1, 2, 3):
        config = SystemConfig(n=3 * t + 1, t=t)
        inputs = {p: ("v" if p % 3 else "w") for p in config.process_ids}
        faulty = list(range(1, t + 1))
        result, non_null, coded_bits = run_with_coding(
            config, inputs, VoteSplitterAdversary(faulty), rounds=10
        )
        worst = max(non_null.values())
        assert worst <= 3, "coding-convention bound violated"
        # O(n^2 log |V|) with the constant made explicit: at most 3
        # broadcasts of one value each.
        assert coded_bits <= 3 * config.n**2 * bits_for_alphabet(2)
        rows.append(
            {
                "n": config.n,
                "t": t,
                "adversary": "vote-splitter",
                "max non-null msgs (paper: <=3)": worst,
                "coded bits": coded_bits,
                "bound 3*n^2*log|V|": 3 * config.n**2 * bits_for_alphabet(2),
            }
        )

    # Consensus-condition timing, standard and fast variants.
    timing_rows = []
    config = SystemConfig(n=7, t=2)
    inputs = {p: "v" for p in config.process_ids}
    result = run_protocol(
        avalanche_factory(),
        config,
        inputs,
        adversary=EquivocatingAdversary([3, 6], "v", "w"),
        run_full_rounds=4,
    )
    decide_round = max(result.decision_rounds.values())
    assert decide_round <= 2
    timing_rows.append(
        {"variant": "standard (n=3t+1)", "paper deadline": 2,
         "measured worst decision round": decide_round}
    )

    config9 = SystemConfig(n=9, t=2)
    inputs9 = {p: "v" for p in config9.process_ids}
    result9 = run_protocol(
        avalanche_factory(thresholds=fast_thresholds(config9)),
        config9,
        inputs9,
        run_full_rounds=3,
    )
    fast_round = max(result9.decision_rounds.values())
    assert fast_round == 1
    timing_rows.append(
        {"variant": "fast (n=4t+1)", "paper deadline": 1,
         "measured worst decision round": fast_round}
    )

    publish(
        "avalanche",
        format_table(rows, title="E1a — avalanche coding-convention costs")
        + "\n\n"
        + format_table(timing_rows, title="E1b — consensus-condition deadlines"),
    )

    config = SystemConfig(n=7, t=2)
    inputs = {p: ("v" if p % 3 else "w") for p in config.process_ids}
    benchmark(
        run_protocol,
        avalanche_factory(),
        config,
        inputs,
        adversary=VoteSplitterAdversary([1, 2]),
        run_full_rounds=8,
    )
