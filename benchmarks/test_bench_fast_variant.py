"""Experiment E7 — the n >= 4t+1 fast variant (Section 5.6).

Paper claim reproduced: "Given that n >= 4t + 1 it is possible to
solve a variant of the avalanche agreement problem with a consensus
condition modified to require a decision in one round rather than two.
Using this variant ... we can reduce the number of rounds in each
block of a compact full-information protocol by one."
"""

from repro.adversary import EquivocatingAdversary
from repro.analysis.report import format_table
from repro.compact.byzantine_agreement import (
    compact_ba_rounds,
    run_compact_byzantine_agreement,
)
from repro.types import SystemConfig

from conftest import publish


def test_fast_variant(benchmark):
    rows = []
    for t in (1, 2):
        n = 4 * t + 1
        config = SystemConfig(n=n, t=t)
        inputs = {p: p % 2 for p in config.process_ids}
        for k in (1, 2):
            standard_rounds = compact_ba_rounds(t, k, overhead=2)
            fast_rounds = compact_ba_rounds(t, k, overhead=1)
            # Block shrinks by one round; totals can only improve.
            assert fast_rounds <= standard_rounds

            standard = run_compact_byzantine_agreement(
                config, inputs, value_alphabet=[0, 1], k=k, overhead=2,
                adversary=EquivocatingAdversary(list(range(1, t + 1)), 0, 1),
            )
            fast = run_compact_byzantine_agreement(
                config, inputs, value_alphabet=[0, 1], k=k, overhead=1,
                adversary=EquivocatingAdversary(list(range(1, t + 1)), 0, 1),
            )
            assert standard.rounds == standard_rounds
            assert fast.rounds == fast_rounds
            assert len(standard.decided_values()) == 1
            assert len(fast.decided_values()) == 1
            rows.append(
                {
                    "n": n,
                    "t": t,
                    "k": k,
                    "rounds standard (k+2 blocks)": standard.rounds,
                    "rounds fast (k+1 blocks)": fast.rounds,
                    "bits standard": standard.metrics.total_bits,
                    "bits fast": fast.metrics.total_bits,
                }
            )

    # At least one configuration must show a strict round saving.
    assert any(
        row["rounds fast (k+1 blocks)"] < row["rounds standard (k+2 blocks)"]
        for row in rows
    )

    publish(
        "fast_variant",
        format_table(rows, title="E7 — fast avalanche variant: one round saved per block"),
    )

    config = SystemConfig(n=9, t=2)
    inputs = {p: p % 2 for p in config.process_ids}
    benchmark(
        run_compact_byzantine_agreement,
        config,
        inputs,
        value_alphabet=[0, 1],
        k=1,
        overhead=1,
    )
